//! Structural netlist analysis — the defensive screening that the
//! paper's stealthy sensor is designed to evade.
//!
//! Cloud FPGA operators have proposed scanning tenant bitstreams for the
//! circuit structures known to implement voltage sensors and power
//! viruses (Krautter et al., TRETS 2019; La et al., "FPGADefender",
//! TRETS 2020). This crate implements that style of checker over the
//! workspace netlist IR as a pass-manager-driven analysis framework:
//!
//! * a [`Pass`] trait and [`PassManager`] pipeline,
//! * per-pass [`CheckerConfig`] sections with tunable thresholds,
//! * tiered [`Severity`] (`Info`/`Warn`/`Reject`),
//! * structured diagnostics ([`Finding`]) carrying witness nets and
//!   machine-readable spans,
//! * suppression/allowlist rules that can silence heuristic findings
//!   but never a `Reject`,
//! * JSON report serialization ([`CheckReport::to_json`]) for CI
//!   consumption, emitted by the `slm-scan` binary.
//!
//! The structural pipeline ([`PassManager::structural`]) runs:
//!
//! * **comb-loop** — every combinational feedback loop with complete
//!   SCC membership (ring oscillators and latch hacks),
//! * **delay-line** — long, densely tapped buffer/inverter chains (the
//!   TDC structure), linear-time via a shared fanout index,
//! * **trivial-array** — huge arrays of replicated trivial cells
//!   (RO-grid power viruses),
//! * **clock-as-data** — clock inputs wired into combinational logic,
//! * **scoap-sensor** — SCOAP-style controllability/observability
//!   scoring of endpoint registers for "sensor-likeness",
//! * **signature** — known-bad subgraph motifs (RO cell, tapped delay
//!   chain) matched through interposed-buffer obfuscation,
//! * **observation-density** — the opt-in, deliberately over-aggressive
//!   output-density heuristic.
//!
//! On top of the structural pipeline sit three **semantic** passes
//! ([`PassManager::semantic`], combined in [`PassManager::full`]) that
//! reason about dataflow rather than topology:
//!
//! * **clock-taint** — a worklist fixpoint over an
//!   untainted/data-rate/clock-rate lattice, seeded from clock-named
//!   inputs, contract-declared clock pins and oscillating loops, that
//!   rejects clock-rate transitions converging on wide observation
//!   fan-in,
//! * **switching-activity** — static transition-density propagation
//!   with a worst-case glitch bound; rejects clock-driven switching
//!   observable at many outputs and upgrades SCOAP sensor-likeness
//!   from heuristic to reject with a witness path,
//! * **observation-bandwidth** — bounds the bits/cycle of clock-rate
//!   state readable at tenant outputs (the paper's TDC readout model).
//!
//! Passes declare dependencies ([`Pass::depends_on`]); the manager
//! schedules independent passes of a level in parallel
//! ([`PassManager::run_parallel`]) and replays per-pass results from a
//! content-addressed [`ScanCache`] ([`PassManager::run_cached`],
//! [`PassManager::run_batch`]) keyed by FNV hashes of the netlist and
//! config — the admission-at-traffic fast path.
//!
//! The headline result of the reproduction's stealth experiment
//! (`slm-core`'s detection matrix): every malicious-by-construction
//! generator is flagged by at least one structural pass, while the ALU
//! and C6288 sensors pass every structural check and are caught
//! **only** by the strict timing pass ([`check_timing`]) — and only if
//! the checker knows the tenant's requested clock. The semantic suite
//! moves that line: the `carry_sensor` specimen (the paper's deployed
//! benign-logic sensor with a contract-declared clock pin) passes every
//! structural check but falls to all three semantic passes, while the
//! benign families stay clean on both tiers.
//!
//! # Example
//!
//! ```
//! use slm_checker::{check_structure, CheckKind};
//! use slm_netlist::generators::{ring_oscillator, alu};
//!
//! let ro = ring_oscillator(8).unwrap();
//! let report = check_structure(&ro);
//! assert!(report.flagged(CheckKind::CombinationalLoop));
//!
//! let benign = alu(32).unwrap();
//! assert!(check_structure(&benign).is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod cache;
pub mod cli;
mod config;
mod diag;
mod pass;
pub mod passes;
pub mod semantic;
mod timing;

pub use analysis::Analysis;
pub use cache::ScanCache;
pub use config::{
    apply_suppressions, ActivityConfig, ArrayConfig, BandwidthConfig, CheckerConfig, ClockConfig,
    DelayLineConfig, LoopConfig, ObservationConfig, ScoapConfig, SignatureConfig, Suppression,
    TaintConfig,
};
pub use diag::{span_of, CheckKind, CheckReport, Finding, Severity, SpanNet, MAX_SPAN_NETS};
pub use pass::{Pass, PassManager, Prior};
pub use timing::check_timing;

use slm_netlist::Netlist;

/// Runs the full structural pipeline with default thresholds.
pub fn check_structure(nl: &Netlist) -> CheckReport {
    check_structure_with(nl, &CheckerConfig::default())
}

/// Runs the full structural pipeline with explicit thresholds.
pub fn check_structure_with(nl: &Netlist, config: &CheckerConfig) -> CheckReport {
    PassManager::structural().run(nl, config)
}

/// Runs the combined structural + semantic pipeline with default
/// thresholds. This is what `slm-scan` runs at admission.
pub fn check_full(nl: &Netlist) -> CheckReport {
    check_full_with(nl, &CheckerConfig::default())
}

/// Runs the combined structural + semantic pipeline with explicit
/// thresholds.
pub fn check_full_with(nl: &Netlist, config: &CheckerConfig) -> CheckReport {
    PassManager::full().run(nl, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_netlist::generators::{
        alu, array_multiplier, c17, clock_as_data, obfuscated_ring_oscillator,
        obfuscated_tdc_delay_line, ring_oscillator, tapped_carry_chain, tdc_delay_line,
    };
    use slm_netlist::{Gate, GateKind, NetId, Netlist};
    use slm_timing::DelayModel;

    #[test]
    fn ring_oscillator_flagged() {
        let ro = ring_oscillator(12).unwrap();
        let r = check_structure(&ro);
        assert!(r.flagged(CheckKind::CombinationalLoop));
        // the SCC pass reports the complete loop membership
        let f = r
            .findings
            .iter()
            .find(|f| f.kind == CheckKind::CombinationalLoop)
            .unwrap();
        assert_eq!(f.span.len(), 13, "NAND + 12 inverters");
        assert_eq!(f.severity, Severity::Reject);
        assert!(f.detail.contains("oscillates"));
    }

    #[test]
    fn tdc_delay_line_flagged() {
        let tdc = tdc_delay_line(64).unwrap();
        let r = check_structure(&tdc);
        assert!(r.flagged(CheckKind::DelayLineSensor), "{r:?}");
        assert!(r.flagged(CheckKind::SensorLikeEndpoints), "{r:?}");
    }

    #[test]
    fn short_pipeline_buffers_not_flagged() {
        let tdc = tdc_delay_line(8).unwrap();
        assert!(check_structure(&tdc).is_clean());
    }

    #[test]
    fn untapped_long_chain_not_flagged() {
        // A long buffer chain with only the final output observed is
        // ordinary pipelining/fanout management, not a sensor.
        let mut b = slm_netlist::NetlistBuilder::new("pipe");
        let mut n = b.input("d");
        for _ in 0..64 {
            n = b.buf(n);
        }
        b.output("q", n);
        let nl = b.finish().unwrap();
        assert!(check_structure(&nl).is_clean());
    }

    #[test]
    fn ro_grid_power_virus_flagged() {
        // 1500 independent 2-NAND cells (the classic RO grid, modelled
        // acyclically so only the array pass fires).
        let mut gates = vec![Gate::new(GateKind::Input, vec![])];
        let mut names = vec![Some("en".to_string())];
        for i in 0..1500u32 {
            gates.push(Gate::new(GateKind::Nand, vec![NetId(0), NetId(0)]));
            names.push(Some(format!("cell{i}")));
        }
        let nl = Netlist::from_parts("grid", gates, vec![NetId(0)], vec![], names).unwrap();
        let r = check_structure(&nl);
        assert!(r.flagged(CheckKind::ExcessiveFanoutArray));
    }

    #[test]
    fn loop_reporting_is_capped_with_a_summary() {
        let grid = slm_netlist::generators::ro_grid(50).unwrap();
        let r = check_structure(&grid);
        let loops: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.kind == CheckKind::CombinationalLoop)
            .collect();
        let cap = CheckerConfig::default().loops.max_reported;
        assert_eq!(loops.len(), cap + 1, "cap + summary finding");
        assert!(loops.last().unwrap().detail.contains("further"));
    }

    #[test]
    fn obfuscated_specimens_are_caught_by_the_new_passes() {
        // Interposed buffers defeat neither the SCC pass nor the
        // signature matcher.
        let ro = obfuscated_ring_oscillator(8).unwrap();
        let r = check_structure(&ro);
        assert!(r.flagged(CheckKind::CombinationalLoop));
        assert!(r.flagged(CheckKind::KnownBadMotif), "{r:?}");

        // The identity-gate TDC evades the plain delay-line matcher but
        // not SCOAP or the tapped-chain signature.
        let tdc = obfuscated_tdc_delay_line(48).unwrap();
        let r = check_structure(&tdc);
        assert!(!r.flagged(CheckKind::DelayLineSensor));
        assert!(r.flagged(CheckKind::SensorLikeEndpoints), "{r:?}");
        assert!(r.flagged(CheckKind::KnownBadMotif), "{r:?}");

        // The carry-chain TDC is pure adder logic: only the signature
        // matcher sees the tapped chain.
        let carry = tapped_carry_chain(64).unwrap();
        let r = check_structure(&carry);
        assert!(r.flagged(CheckKind::KnownBadMotif), "{r:?}");

        // Clock-as-data is its own pass.
        let clk = clock_as_data(16).unwrap();
        let r = check_structure(&clk);
        assert!(r.flagged(CheckKind::ClockAsData), "{r:?}");
        assert_eq!(r.max_severity(), Some(Severity::Reject));
    }

    #[test]
    fn benign_circuits_pass_structural_checks() {
        for nl in [alu(192).unwrap(), array_multiplier(16).unwrap(), c17()] {
            let r = check_structure(&nl);
            assert!(r.is_clean(), "{} flagged: {:?}", nl.name(), r.findings);
        }
    }

    #[test]
    fn observation_heuristic_is_a_false_positive_trap() {
        // Opt-in heuristic: it catches a tapped carry chain (a TDC built
        // from an adder), but it also flags a perfectly ordinary
        // ripple-carry adder — the paper's argument for why structural
        // screening cannot be tightened into a defence.
        let config = CheckerConfig {
            observation: ObservationConfig {
                enable: true,
                ..ObservationConfig::default()
            },
            ..CheckerConfig::default()
        };
        let rca = slm_netlist::generators::ripple_carry_adder(64).unwrap();
        let r = check_structure_with(&rca, &config);
        assert!(
            r.flagged(CheckKind::ObservationDensity),
            "the heuristic must (wrongly) flag the plain adder: {r:?}"
        );
        // while the big ALU, whose outputs are a tiny fraction of its
        // logic, passes even the aggressive heuristic
        let alu = alu(192).unwrap();
        assert!(check_structure_with(&alu, &config).is_clean());
        // and it stays off by default
        assert!(check_structure(&rca).is_clean());
    }

    #[test]
    fn suppression_silences_warn_but_never_reject() {
        let rca = slm_netlist::generators::ripple_carry_adder(64).unwrap();
        let config = CheckerConfig {
            observation: ObservationConfig {
                enable: true,
                ..ObservationConfig::default()
            },
            suppressions: vec![Suppression {
                kind: Some(CheckKind::ObservationDensity),
                reason: "known-benign adder".into(),
                ..Suppression::default()
            }],
            ..CheckerConfig::default()
        };
        let r = check_structure_with(&rca, &config);
        assert!(r.is_clean(), "suppressed Warn no longer dirties: {r:?}");
        assert!(
            r.findings.iter().any(|f| f.suppressed.is_some()),
            "the finding stays in the report for audit"
        );

        // A blanket suppression cannot hide a Reject.
        let ro = ring_oscillator(8).unwrap();
        let config = CheckerConfig {
            suppressions: vec![Suppression {
                reason: "attempted cover-up".into(),
                ..Suppression::default()
            }],
            ..CheckerConfig::default()
        };
        let r = check_structure_with(&ro, &config);
        assert!(!r.is_clean());
        assert!(r.flagged(CheckKind::CombinationalLoop));
    }

    #[test]
    fn strict_timing_catches_the_overclock() {
        // The paper's discussion: only a strict timing check catches the
        // benign sensor — at 300 MHz, never at its synthesis clock.
        let nl = alu(192).unwrap();
        let ann = DelayModel::default()
            .annotate_for_period(&nl, 20.0, 0.9)
            .unwrap();
        assert!(check_timing(&ann, 50.0).is_clean());
        let r = check_timing(&ann, 300.0);
        assert!(r.flagged(CheckKind::TimingOverclock));
        assert!(r.findings[0].detail.contains("300.0 MHz"));
        assert!(
            !r.findings[0].span.is_empty(),
            "overclock reports the critical path"
        );
    }

    #[test]
    fn timing_check_on_cyclic_reports_loop() {
        let ro = ring_oscillator(4).unwrap();
        let ann = DelayModel::default().annotate(&ro);
        let r = check_timing(&ann, 100.0);
        assert!(r.flagged(CheckKind::CombinationalLoop));
        // routed through the SCC pass: witness net and loop size present
        let f = r
            .findings
            .iter()
            .find(|f| f.kind == CheckKind::CombinationalLoop)
            .unwrap();
        assert!(f.witness.is_some());
        assert_eq!(f.span.len(), 5, "NAND + 4 inverters");
        assert!(f.detail.contains("5 nets"));
    }

    #[test]
    fn pass_manager_is_composable() {
        let mut pm = PassManager::empty();
        pm.push(Box::new(passes::SccLoopPass));
        assert_eq!(pm.pass_names(), vec!["comb-loop"]);
        let tdc = tdc_delay_line(64).unwrap();
        // only the loop pass runs: the TDC sails through
        assert!(pm.run(&tdc, &CheckerConfig::default()).is_clean());
        let names = PassManager::structural().pass_names();
        assert_eq!(names.len(), 7);
        assert!(names.contains(&"scoap-sensor") && names.contains(&"signature"));
        let full = PassManager::full().pass_names();
        assert_eq!(full.len(), 10);
        assert!(full.contains(&"clock-taint") && full.contains(&"observation-bandwidth"));
    }

    #[test]
    fn dependency_schedule_orders_semantic_after_prerequisites() {
        let schedule = PassManager::full().schedule();
        let level_of = |pass: &str| {
            schedule
                .iter()
                .position(|lvl| lvl.contains(&pass))
                .unwrap_or_else(|| panic!("{pass} not scheduled"))
        };
        // dependents strictly after their declared dependencies
        assert!(level_of("switching-activity") > level_of("scoap-sensor"));
        assert!(level_of("observation-bandwidth") > level_of("clock-taint"));
        // all seven structural passes plus clock-taint are independent
        assert_eq!(schedule[0].len(), 8, "{schedule:?}");
    }

    #[test]
    fn semantic_suite_catches_the_declared_clock_sensor() {
        // The carry-chain sensor with a contract-declared clock pin is
        // the specimen structural screening cannot see.
        let nl = slm_netlist::generators::carry_sensor(64, 4).unwrap();
        assert!(
            check_structure(&nl).is_clean(),
            "structurally clean by design"
        );
        let config = CheckerConfig {
            taint: TaintConfig {
                declared_clocks: vec!["sense".into()],
                ..TaintConfig::default()
            },
            ..CheckerConfig::default()
        };
        let r = check_full_with(&nl, &config);
        assert!(r.flagged(CheckKind::ClockTaint), "{r:?}");
        assert!(r.flagged(CheckKind::SwitchingActivity), "{r:?}");
        assert!(r.flagged(CheckKind::ObservationBandwidth), "{r:?}");
        assert_eq!(r.max_severity(), Some(Severity::Reject));
        // without the contract declaration the taint seed disappears
        let r = check_full(&nl);
        assert!(!r.flagged(CheckKind::ClockTaint), "{r:?}");
    }

    #[test]
    fn semantic_suite_stays_quiet_on_benign_designs() {
        for nl in [alu(192).unwrap(), array_multiplier(16).unwrap(), c17()] {
            let r = check_full(&nl);
            assert!(
                r.active().all(|f| f.severity == Severity::Info),
                "{} semantically flagged: {:?}",
                nl.name(),
                r.findings
            );
            assert!(r.is_clean(), "{}: {:?}", nl.name(), r.findings);
        }
    }

    #[test]
    fn cached_rescan_is_bit_identical() {
        let cache = ScanCache::in_memory();
        let pm = PassManager::full();
        let nl = tdc_delay_line(64).unwrap();
        let config = CheckerConfig::default();
        let cold = pm.run_cached(&nl, &config, &cache);
        let warm = pm.run_cached(&nl, &config, &cache);
        assert_eq!(cold.to_json(), warm.to_json());
        assert!(
            cache.hits() >= pm.pass_names().len() as u64,
            "warm scan replays"
        );
        // a config change invalidates the key
        let strict = CheckerConfig {
            bandwidth: BandwidthConfig {
                warn_bits_per_cycle: 1,
            },
            ..CheckerConfig::default()
        };
        let miss_before = cache.misses();
        let _ = pm.run_cached(&nl, &strict, &cache);
        assert!(cache.misses() > miss_before);
    }

    #[test]
    fn parallel_full_scan_matches_serial() {
        let pm = PassManager::full();
        let config = CheckerConfig::default();
        for nl in [
            tdc_delay_line(64).unwrap(),
            ring_oscillator(8).unwrap(),
            slm_netlist::generators::carry_sensor(32, 4).unwrap(),
        ] {
            let serial = pm.run(&nl, &config);
            let par = pm.run_parallel(&nl, &config, 4);
            assert_eq!(serial.to_json(), par.to_json(), "{}", nl.name());
        }
    }
}
