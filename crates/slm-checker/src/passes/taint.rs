//! The clock-taint dataflow pass.

use crate::analysis::Analysis;
use crate::config::CheckerConfig;
use crate::diag::{span_of, CheckKind, Finding, Severity};
use crate::pass::{Pass, Prior};
use crate::semantic::{compute_taint, Taint, DEPTH_UNREACHED};
use slm_netlist::NetId;

/// Flags designs where clock-rate toggling propagates *through real
/// logic* and converges on wide observation fan-in at the tenant's
/// outputs — the dataflow shape of every power sensor in the paper,
/// independent of topology.
///
/// This is the semantic counterpart of the structural clock-as-data
/// name screen: that pass keys on what the clock pin is *called*, so
/// renaming `clk` to `sense` defeats it. Here the seeds come from the
/// interface contract ([`crate::TaintConfig::declared_clocks`] — the
/// shell owns clock routing, so the provider knows the pin roles at
/// admission time) as well as from names and from self-oscillating
/// loops, and a worklist fixpoint follows the toggling wherever the
/// dataflow carries it.
pub struct ClockTaintPass;

impl Pass for ClockTaintPass {
    fn name(&self) -> &'static str {
        "clock-taint"
    }

    fn description(&self) -> &'static str {
        "clock-rate toggling reaching outputs through logic (dataflow fixpoint)"
    }

    fn run(
        &self,
        cx: &Analysis<'_>,
        config: &CheckerConfig,
        _prior: &Prior<'_>,
        findings: &mut Vec<Finding>,
    ) {
        let nl = cx.netlist();
        let facts = compute_taint(cx, config);
        if facts.seeds.is_empty() {
            return;
        }
        let tainted: Vec<NetId> = nl
            .outputs()
            .iter()
            .map(|&(_, o)| o)
            .filter(|o| facts.taint[o.index()] == Taint::ClockRate)
            .collect();
        if tainted.is_empty() {
            return;
        }
        // Only outputs reached through at least `min_logic_depth`
        // non-buffer gates count as *sensing*; pure buffer feed-through
        // of a clock is routing, not observation.
        let through_logic: Vec<NetId> = tainted
            .iter()
            .copied()
            .filter(|o| {
                let d = facts.depth[o.index()];
                d != DEPTH_UNREACHED && d as usize >= config.taint.min_logic_depth
            })
            .collect();
        if through_logic.len() >= config.taint.min_observed {
            let deepest = through_logic
                .iter()
                .copied()
                .max_by_key(|o| facts.depth[o.index()])
                .expect("nonempty");
            findings.push(
                Finding::new(
                    CheckKind::ClockTaint,
                    Severity::Reject,
                    self.name(),
                    format!(
                        "clock-rate transitions converge on {} of {} outputs through \
                         combinational logic (max depth {}, {} clock seeds)",
                        through_logic.len(),
                        nl.outputs().len(),
                        facts.depth[deepest.index()],
                        facts.seeds.len(),
                    ),
                )
                .with_witness(deepest)
                .with_span(span_of(nl, &through_logic)),
            );
        } else {
            findings.push(
                Finding::new(
                    CheckKind::ClockTaint,
                    Severity::Info,
                    self.name(),
                    format!(
                        "{} output(s) carry clock-rate taint ({} through logic) — \
                         below the {}-output convergence threshold",
                        tainted.len(),
                        through_logic.len(),
                        config.taint.min_observed,
                    ),
                )
                .with_witness(tainted[0])
                .with_span(span_of(nl, &tainted)),
            );
        }
    }
}
