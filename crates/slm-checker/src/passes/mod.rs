//! The structural and semantic analyses.

mod activity;
mod bandwidth;
mod clock_as_data;
mod delay_line;
mod loops;
mod observation;
mod scoap;
mod signature;
mod taint;
mod trivial_array;

pub use activity::SwitchingActivityPass;
pub use bandwidth::ObservationBandwidthPass;
pub use clock_as_data::ClockAsDataPass;
pub use delay_line::DelayLinePass;
pub use loops::SccLoopPass;
pub use observation::ObservationDensityPass;
pub use scoap::ScoapSensorPass;
pub use signature::SignaturePass;
pub use taint::ClockTaintPass;
pub use trivial_array::TrivialArrayPass;
