//! Clock-as-data detection.

use crate::analysis::Analysis;
use crate::config::CheckerConfig;
use crate::diag::{span_of, CheckKind, Finding, Severity};
use crate::pass::{Pass, Prior};

/// Strips a trailing `[index]` bus suffix and lowercases.
fn base_name(name: &str) -> String {
    let stem = match name.find('[') {
        Some(i) if name.ends_with(']') => &name[..i],
        _ => name,
    };
    stem.to_ascii_lowercase()
}

/// Flags clock inputs that drive combinational logic — the fourth
/// structural check the paper names.
///
/// Routing a clock into LUT data inputs is the standard way to build a
/// latch-based sensor or glitch generator without a combinational loop,
/// so any fanout at all from a clock-named input into the gate network
/// is rejected.
pub struct ClockAsDataPass;

impl Pass for ClockAsDataPass {
    fn name(&self) -> &'static str {
        "clock-as-data"
    }

    fn description(&self) -> &'static str {
        "clock inputs used as combinational data signals"
    }

    fn run(
        &self,
        cx: &Analysis<'_>,
        config: &CheckerConfig,
        _prior: &Prior<'_>,
        findings: &mut Vec<Finding>,
    ) {
        let nl = cx.netlist();
        for &input in nl.inputs() {
            let Some(name) = nl.net_name(input) else {
                continue;
            };
            let base = base_name(name);
            if !config.clock.clock_names.contains(&base) {
                continue;
            }
            let drives = cx.fanout().degree(input);
            if drives == 0 {
                continue;
            }
            let driven: Vec<_> = cx.fanout().fanouts(input).to_vec();
            findings.push(
                Finding::new(
                    CheckKind::ClockAsData,
                    Severity::Reject,
                    self.name(),
                    format!("clock input '{name}' drives {drives} combinational gate inputs"),
                )
                .with_witness(input)
                .with_span(span_of(nl, &driven)),
            );
        }
    }
}
