//! SCOAP-style controllability/observability scoring of endpoints.

use crate::analysis::Analysis;
use crate::config::CheckerConfig;
use crate::diag::{span_of, CheckKind, Finding, Severity};
use crate::pass::{Pass, Prior};
use slm_netlist::{GateKind, NetId, Netlist};

/// Saturation ceiling for SCOAP scores (uncontrollable / unobservable).
const INF: u64 = u64::MAX / 4;

fn sat(a: u64, b: u64) -> u64 {
    a.saturating_add(b).min(INF)
}

/// Combinational 0/1-controllability per net (Goldstein's SCOAP),
/// computed over a topological order.
fn controllability(nl: &Netlist, order: &[NetId]) -> (Vec<u64>, Vec<u64>) {
    let n = nl.len();
    let mut cc0 = vec![INF; n];
    let mut cc1 = vec![INF; n];
    for &v in order {
        let g = nl.gate(v);
        let f = |id: NetId| (cc0[id.index()], cc1[id.index()]);
        let (c0, c1) = match g.kind {
            GateKind::Input => (1, 1),
            GateKind::Const0 => (1, INF),
            GateKind::Const1 => (INF, 1),
            GateKind::Buf => {
                let (a0, a1) = f(g.fanin[0]);
                (sat(a0, 1), sat(a1, 1))
            }
            GateKind::Not => {
                let (a0, a1) = f(g.fanin[0]);
                (sat(a1, 1), sat(a0, 1))
            }
            GateKind::And | GateKind::Nand => {
                let all_one = g.fanin.iter().fold(0, |acc, &i| sat(acc, f(i).1));
                let any_zero = g.fanin.iter().map(|&i| f(i).0).min().unwrap_or(INF);
                if g.kind == GateKind::And {
                    (sat(any_zero, 1), sat(all_one, 1))
                } else {
                    (sat(all_one, 1), sat(any_zero, 1))
                }
            }
            GateKind::Or | GateKind::Nor => {
                let all_zero = g.fanin.iter().fold(0, |acc, &i| sat(acc, f(i).0));
                let any_one = g.fanin.iter().map(|&i| f(i).1).min().unwrap_or(INF);
                if g.kind == GateKind::Or {
                    (sat(all_zero, 1), sat(any_one, 1))
                } else {
                    (sat(any_one, 1), sat(all_zero, 1))
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                // Fold the parity pairwise: cost of even / odd parity.
                let (mut e, mut o) = (0u64, INF);
                for &i in &g.fanin {
                    let (a0, a1) = f(i);
                    let ne = sat(e, a0).min(sat(o, a1));
                    let no = sat(e, a1).min(sat(o, a0));
                    e = ne;
                    o = no;
                }
                if g.kind == GateKind::Xor {
                    (sat(e, 1), sat(o, 1))
                } else {
                    (sat(o, 1), sat(e, 1))
                }
            }
        };
        cc0[v.index()] = c0;
        cc1[v.index()] = c1;
    }
    (cc0, cc1)
}

/// Combinational observability per net: cost of propagating the net's
/// value to some primary output.
fn observability(cx: &Analysis<'_>, order: &[NetId], cc0: &[u64], cc1: &[u64]) -> Vec<u64> {
    let nl = cx.netlist();
    let mut co = vec![INF; nl.len()];
    for &(_, o) in nl.outputs() {
        co[o.index()] = 0;
    }
    for &v in order.iter().rev() {
        let g = nl.gate(v);
        let through = co[v.index()];
        if through >= INF {
            continue;
        }
        for (i, &fi) in g.fanin.iter().enumerate() {
            let side: u64 = g
                .fanin
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &fj)| match g.kind {
                    GateKind::And | GateKind::Nand => cc1[fj.index()],
                    GateKind::Or | GateKind::Nor => cc0[fj.index()],
                    _ => cc0[fj.index()].min(cc1[fj.index()]),
                })
                .fold(0, sat);
            let cost = sat(sat(through, side), 1);
            let slot = &mut co[fi.index()];
            *slot = (*slot).min(cost);
        }
    }
    co
}

/// Scores how sensor-like the endpoint registers of a design are.
///
/// A TDC endpoint sits at the end of a deep logic cone that is barely
/// wider than it is deep (a chain), which in SCOAP terms means its
/// controllability grows linearly with depth while every chain net
/// stays cheaply observable. Ordinary arithmetic endpoints have wide
/// cones — depth is a small fraction of cone size — so the
/// depth-to-cone "chain ratio" cleanly separates the two. The pass
/// fires `Warn` when enough endpoints look sensor-like, `Info` when
/// only a sub-threshold group does.
pub struct ScoapSensorPass;

impl Pass for ScoapSensorPass {
    fn name(&self) -> &'static str {
        "scoap-sensor"
    }

    fn description(&self) -> &'static str {
        "SCOAP-style sensor-likeness of endpoint registers"
    }

    fn run(
        &self,
        cx: &Analysis<'_>,
        config: &CheckerConfig,
        _prior: &Prior<'_>,
        findings: &mut Vec<Finding>,
    ) {
        let nl = cx.netlist();
        let Ok(order) = nl.topological_order() else {
            return; // cyclic designs are rejected by the loop pass
        };
        if nl.outputs().is_empty() {
            return;
        }
        // Logic depth per net, shared with the semantic passes.
        let level = cx.levels().expect("acyclic netlist has levels");
        let (cc0, cc1) = controllability(nl, order);
        let co = observability(cx, order, &cc0, &cc1);
        // Fanin-cone size per endpoint, via an epoch-stamped DFS.
        let mut stamp = vec![0u32; nl.len()];
        let mut epoch = 0u32;
        let mut stack: Vec<NetId> = Vec::new();
        let mut sensor_like: Vec<NetId> = Vec::new();
        let mut depth_sum = 0usize;
        let mut ctrl_sum = 0u64;
        for &(_, o) in nl.outputs() {
            let depth = level[o.index()];
            if depth < config.scoap.min_depth {
                continue;
            }
            epoch += 1;
            let mut cone = 0usize;
            stack.push(o);
            stamp[o.index()] = epoch;
            while let Some(v) = stack.pop() {
                cone += 1;
                for &f in &nl.gate(v).fanin {
                    if stamp[f.index()] != epoch {
                        stamp[f.index()] = epoch;
                        stack.push(f);
                    }
                }
            }
            let ratio = depth as f64 / (cone.saturating_sub(1).max(1)) as f64;
            if ratio >= config.scoap.min_chain_ratio {
                sensor_like.push(o);
                depth_sum += depth;
                ctrl_sum = sat(ctrl_sum, cc0[o.index()].min(cc1[o.index()]));
            }
        }
        if sensor_like.len() < config.scoap.min_endpoints {
            return;
        }
        let total = nl.outputs().len();
        let fraction = sensor_like.len() as f64 / total as f64;
        let mean_depth = depth_sum as f64 / sensor_like.len() as f64;
        let mean_ctrl = ctrl_sum as f64 / sensor_like.len() as f64;
        let observable = co.iter().filter(|&&c| c < INF).count();
        let severity = if fraction >= config.scoap.min_endpoint_fraction {
            Severity::Warn
        } else {
            Severity::Info
        };
        let witness = sensor_like
            .iter()
            .copied()
            .max_by_key(|o| level[o.index()])
            .expect("nonempty");
        findings.push(
            Finding::new(
                CheckKind::SensorLikeEndpoints,
                severity,
                self.name(),
                format!(
                    "{}/{total} endpoints are chain-shaped (mean depth {mean_depth:.0}, \
                     mean controllability {mean_ctrl:.0}, {observable}/{} nets observable)",
                    sensor_like.len(),
                    nl.len(),
                ),
            )
            .with_witness(witness)
            .with_span(span_of(nl, &sensor_like)),
        );
    }
}
