//! The static switching-activity estimator pass.

use crate::analysis::Analysis;
use crate::config::CheckerConfig;
use crate::diag::{span_of, CheckKind, Finding, Severity};
use crate::pass::{Pass, Prior};
use crate::semantic::{compute_activity, compute_taint};
use slm_netlist::NetId;

/// Estimates per-net transition densities and glitch bounds, then
/// raises power-proxy findings:
///
/// * **clock-driven taps** — outputs whose *clock-attributable* glitch
///   bound clears [`crate::ActivityConfig::tap_threshold`]; enough of
///   them is a rejection, because clock toggling observable at many
///   outputs every cycle is exactly the paper's sensing channel;
/// * **SCOAP upgrade** — the heuristic sensor-likeness `Warn` from the
///   `scoap-sensor` pass is upgraded to a `Reject` when the summed
///   worst-case glitch bound over the flagged endpoint group is high
///   enough to carry a usable power proxy, with the witness path of
///   the strongest endpoint attached;
/// * **reconvergence note** — an `Info` record of the worst glitch
///   amplification (XOR-heavy reconvergent fanout), the region a power
///   *emitter* would occupy.
pub struct SwitchingActivityPass;

/// Walks the highest-glitch fanin chain below `from`, producing a
/// witness path (output first).
fn glitch_path(cx: &Analysis<'_>, glitch: &[f64], from: NetId) -> Vec<NetId> {
    let nl = cx.netlist();
    let mut path = vec![from];
    let mut at = from;
    while path.len() < crate::diag::MAX_SPAN_NETS {
        let g = nl.gate(at);
        let Some(&next) = g.fanin.iter().max_by(|a, b| {
            glitch[a.index()]
                .partial_cmp(&glitch[b.index()])
                .expect("glitch bounds are finite")
        }) else {
            break;
        };
        path.push(next);
        at = next;
    }
    path
}

impl Pass for SwitchingActivityPass {
    fn name(&self) -> &'static str {
        "switching-activity"
    }

    fn description(&self) -> &'static str {
        "transition-density / glitch power proxy (upgrades SCOAP sensor-likeness)"
    }

    fn depends_on(&self) -> &'static [&'static str] {
        &["scoap-sensor"]
    }

    fn run(
        &self,
        cx: &Analysis<'_>,
        config: &CheckerConfig,
        prior: &Prior<'_>,
        findings: &mut Vec<Finding>,
    ) {
        let nl = cx.netlist();
        let taint = compute_taint(cx, config);
        let Some(facts) = compute_activity(cx, config, &taint) else {
            return; // cyclic: the loop pass already rejects
        };
        // Clock-driven observation taps.
        let taps: Vec<NetId> = nl
            .outputs()
            .iter()
            .map(|&(_, o)| o)
            .filter(|o| facts.clock_glitch[o.index()] >= config.activity.tap_threshold)
            .collect();
        if taps.len() >= config.activity.min_taps {
            let strongest = taps
                .iter()
                .copied()
                .max_by(|a, b| {
                    facts.clock_glitch[a.index()]
                        .partial_cmp(&facts.clock_glitch[b.index()])
                        .expect("finite")
                })
                .expect("nonempty");
            findings.push(
                Finding::new(
                    CheckKind::SwitchingActivity,
                    Severity::Reject,
                    self.name(),
                    format!(
                        "clock-driven switching observable at {} of {} outputs \
                         (peak {:.1} transitions/cycle attributable to the clock)",
                        taps.len(),
                        nl.outputs().len(),
                        facts.clock_glitch[strongest.index()],
                    ),
                )
                .with_witness(strongest)
                .with_span(span_of(nl, &taps)),
            );
        }
        // SCOAP upgrade: heuristic Warn + high power proxy = Reject.
        for scoap in prior.findings_of("scoap-sensor") {
            if scoap.kind != CheckKind::SensorLikeEndpoints || scoap.severity != Severity::Warn {
                continue;
            }
            let endpoints: Vec<NetId> = scoap.span.iter().map(|s| s.net).collect();
            let total: f64 = endpoints
                .iter()
                .map(|o| facts.glitch[o.index()])
                .sum::<f64>()
                .min(crate::semantic::GLITCH_CAP);
            if total < config.activity.scoap_upgrade_glitch {
                continue;
            }
            let strongest = endpoints
                .iter()
                .copied()
                .max_by(|a, b| {
                    facts.glitch[a.index()]
                        .partial_cmp(&facts.glitch[b.index()])
                        .expect("finite")
                })
                .expect("scoap spans are nonempty");
            findings.push(
                Finding::new(
                    CheckKind::SwitchingActivity,
                    Severity::Reject,
                    self.name(),
                    format!(
                        "sensor-like endpoint group carries a {total:.1} transitions/cycle \
                         worst-case power proxy — upgrading SCOAP heuristic to reject \
                         (witness path from the strongest endpoint)",
                    ),
                )
                .with_witness(strongest)
                .with_span(span_of(nl, &glitch_path(cx, &facts.glitch, strongest))),
            );
        }
        // Reconvergence / glitch-amplification note.
        let worst = (0..nl.len())
            .filter(|&i| facts.density[i] > 0.0)
            .max_by(|&a, &b| {
                (facts.glitch[a] / facts.density[a])
                    .partial_cmp(&(facts.glitch[b] / facts.density[b]))
                    .expect("finite")
            });
        if let Some(worst) = worst {
            let amp = facts.glitch[worst] / facts.density[worst];
            if amp >= config.activity.info_amplification {
                findings.push(
                    Finding::new(
                        CheckKind::SwitchingActivity,
                        Severity::Info,
                        self.name(),
                        format!(
                            "glitch amplification bound {amp:.0}x at net {} — XOR-heavy \
                             reconvergent fanout (power-emitter shaped region)",
                            NetId(worst as u32),
                        ),
                    )
                    .with_witness(NetId(worst as u32)),
                );
            }
        }
    }
}
