//! Tapped delay-line (TDC) detection.

use crate::analysis::Analysis;
use crate::config::CheckerConfig;
use crate::diag::{span_of, CheckKind, Finding, Severity};
use crate::pass::{Pass, Prior};
use slm_netlist::{GateKind, NetId};

/// Walks maximal chains of single-fanin `BUF`/`NOT` cells and flags
/// chains that are long and densely observed — the TDC structure of
/// Krautter et al. / FPGADefender's delay-line rule.
///
/// Chain successors come from the shared [`Analysis`] fanout index, so
/// the walk is O(nets + edges) overall; the previous implementation
/// rescanned every gate per chain step, which was quadratic on long
/// lines (the 50k-stage bench in `slm-bench` guards the fix).
pub struct DelayLinePass;

impl Pass for DelayLinePass {
    fn name(&self) -> &'static str {
        "delay-line"
    }

    fn description(&self) -> &'static str {
        "long, densely tapped buffer/inverter chains (TDC sensors)"
    }

    fn run(
        &self,
        cx: &Analysis<'_>,
        config: &CheckerConfig,
        _prior: &Prior<'_>,
        findings: &mut Vec<Finding>,
    ) {
        let nl = cx.netlist();
        let is_chain_cell = |id: NetId| {
            matches!(nl.gate(id).kind, GateKind::Buf | GateKind::Not)
                && nl.gate(id).fanin.len() == 1
        };
        let mut visited = vec![false; nl.len()];
        for start in 0..nl.len() {
            let sid = NetId(start as u32);
            if visited[start] || !is_chain_cell(sid) {
                continue;
            }
            // Only start from chain heads (predecessor is not a chain cell).
            if is_chain_cell(nl.gate(sid).fanin[0]) {
                continue;
            }
            // Follow the chain forward via the fanout index.
            let mut chain = vec![sid];
            visited[start] = true;
            let mut cur = sid;
            while let Some(&next) = cx
                .fanout()
                .fanouts(cur)
                .iter()
                .find(|&&g| is_chain_cell(g) && !visited[g.index()])
            {
                visited[next.index()] = true;
                chain.push(next);
                cur = next;
            }
            if chain.len() < config.delay_line.min_stages {
                continue;
            }
            let taps = chain.iter().filter(|&&id| cx.is_output(id)).count();
            let frac = taps as f64 / chain.len() as f64;
            if frac >= config.delay_line.min_tap_fraction {
                findings.push(
                    Finding::new(
                        CheckKind::DelayLineSensor,
                        Severity::Reject,
                        self.name(),
                        format!("tapped delay line of {} stages ({taps} taps)", chain.len()),
                    )
                    .with_witness(chain[0])
                    .with_span(span_of(nl, &chain)),
                );
            }
        }
    }
}
