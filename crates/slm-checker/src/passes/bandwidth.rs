//! The observation-bandwidth pass.

use crate::analysis::Analysis;
use crate::config::CheckerConfig;
use crate::diag::{span_of, CheckKind, Finding, Severity};
use crate::pass::{Pass, Prior};
use crate::semantic::{compute_taint, Taint};
use slm_netlist::NetId;

/// Bounds the bits/cycle of clock-rate state observable at the
/// tenant's outputs.
///
/// The paper's TDC reads a thermometer code — one bit per tap — every
/// capture cycle; sensing capability therefore scales with how many
/// output bits carry clock-rate toggling, *regardless of the logic
/// that produced them*. Every clock-tainted output (including pure
/// buffer feed-through, which a readout can still sample) counts one
/// bit toward the bound; clearing
/// [`crate::BandwidthConfig::warn_bits_per_cycle`] warns, anything
/// nonzero below it is recorded as an `Info` note.
pub struct ObservationBandwidthPass;

impl Pass for ObservationBandwidthPass {
    fn name(&self) -> &'static str {
        "observation-bandwidth"
    }

    fn description(&self) -> &'static str {
        "bits/cycle of clock-rate state observable at outputs (TDC readout bound)"
    }

    fn depends_on(&self) -> &'static [&'static str] {
        &["clock-taint"]
    }

    fn run(
        &self,
        cx: &Analysis<'_>,
        config: &CheckerConfig,
        prior: &Prior<'_>,
        findings: &mut Vec<Finding>,
    ) {
        let nl = cx.netlist();
        let facts = compute_taint(cx, config);
        let tainted: Vec<NetId> = nl
            .outputs()
            .iter()
            .map(|&(_, o)| o)
            .filter(|o| facts.taint[o.index()] == Taint::ClockRate)
            .collect();
        let bits = tainted.len();
        if bits == 0 {
            return;
        }
        let corroborated = prior
            .findings_of("clock-taint")
            .iter()
            .any(|f| f.kind == CheckKind::ClockTaint && f.severity >= Severity::Reject);
        let severity = if bits >= config.bandwidth.warn_bits_per_cycle {
            Severity::Warn
        } else {
            Severity::Info
        };
        findings.push(
            Finding::new(
                CheckKind::ObservationBandwidth,
                severity,
                self.name(),
                format!(
                    "{bits} bit(s)/cycle of clock-rate state observable at {} outputs \
                     (TDC thermometer-readout bound){}",
                    nl.outputs().len(),
                    if corroborated {
                        " — corroborates the clock-taint convergence rejection"
                    } else {
                        ""
                    },
                ),
            )
            .with_witness(tainted[0])
            .with_span(span_of(nl, &tainted)),
        );
    }
}
