//! Replicated trivial-cell array (power virus) detection.

use crate::analysis::Analysis;
use crate::config::CheckerConfig;
use crate::diag::{CheckKind, Finding, Severity};
use crate::pass::{Pass, Prior};
use slm_netlist::GateKind;

/// Flags netlists that are overwhelmingly made of tiny replicated
/// cells — the RO-grid power-virus shape (thousands of NAND/NOT cells,
/// no real logic), independent of whether the loops themselves are
/// visible.
pub struct TrivialArrayPass;

impl Pass for TrivialArrayPass {
    fn name(&self) -> &'static str {
        "trivial-array"
    }

    fn description(&self) -> &'static str {
        "large arrays of replicated trivial cells (power viruses)"
    }

    fn run(
        &self,
        cx: &Analysis<'_>,
        config: &CheckerConfig,
        _prior: &Prior<'_>,
        findings: &mut Vec<Finding>,
    ) {
        let nl = cx.netlist();
        let trivial = nl
            .gates()
            .iter()
            .filter(|g| {
                matches!(g.kind, GateKind::Not | GateKind::Buf | GateKind::Nand)
                    && g.fanin.len() <= 2
            })
            .count();
        let total_logic = nl
            .gates()
            .iter()
            .filter(|g| g.kind != GateKind::Input)
            .count();
        if trivial >= config.array.min_cells
            && trivial as f64 >= total_logic as f64 * config.array.min_trivial_fraction
        {
            findings.push(Finding::new(
                CheckKind::ExcessiveFanoutArray,
                Severity::Reject,
                self.name(),
                format!("{trivial} of {total_logic} cells are trivial replicated gates"),
            ));
        }
    }
}
