//! SCC-based oscillation detection.

use crate::analysis::Analysis;
use crate::config::CheckerConfig;
use crate::diag::{span_of, CheckKind, Finding, Severity};
use crate::pass::{Pass, Prior};

/// Reports every combinational feedback loop with its complete
/// membership (Tarjan SCCs), not just one topological-sort witness.
///
/// A loop with an odd number of inverting members oscillates (the ring
/// oscillator structure); an even count is a latch — both are rejected,
/// since neither belongs in a tenant's combinational region.
pub struct SccLoopPass;

impl Pass for SccLoopPass {
    fn name(&self) -> &'static str {
        "comb-loop"
    }

    fn description(&self) -> &'static str {
        "combinational feedback loops via strongly connected components"
    }

    fn run(
        &self,
        cx: &Analysis<'_>,
        config: &CheckerConfig,
        _prior: &Prior<'_>,
        findings: &mut Vec<Finding>,
    ) {
        let nl = cx.netlist();
        let loops = cx.loops();
        for (i, comp) in loops.iter().enumerate() {
            if i == config.loops.max_reported {
                findings.push(
                    Finding::new(
                        CheckKind::CombinationalLoop,
                        Severity::Reject,
                        self.name(),
                        format!(
                            "{} further combinational loops beyond loops.max_reported ({})",
                            loops.len() - i,
                            config.loops.max_reported
                        ),
                    )
                    .with_witness(comp[0]),
                );
                break;
            }
            let inverting = comp
                .iter()
                .filter(|&&id| nl.gate(id).kind.is_inverting())
                .count();
            let behaviour = if inverting % 2 == 1 {
                "odd inversion: oscillates"
            } else {
                "even inversion: latches"
            };
            findings.push(
                Finding::new(
                    CheckKind::CombinationalLoop,
                    Severity::Reject,
                    self.name(),
                    format!(
                        "combinational loop of {} nets, {} inverting ({})",
                        comp.len(),
                        inverting,
                        behaviour
                    ),
                )
                .with_witness(comp[0])
                .with_span(span_of(nl, comp)),
            );
        }
    }
}
