//! The opt-in observation-density heuristic.

use crate::analysis::Analysis;
use crate::config::CheckerConfig;
use crate::diag::{CheckKind, Finding, Severity};
use crate::pass::{Pass, Prior};
use slm_netlist::GateKind;

/// Warns when an unusually large fraction of the logic is observed at
/// outputs.
///
/// **Deliberately over-aggressive and off by default**: it flags a
/// plain ripple-carry adder just as readily as a tapped carry-chain
/// TDC, which is the paper's argument for why structural screening
/// cannot be tightened into a defence. It is kept as `Warn` severity so
/// operators can allowlist the false positives it produces.
pub struct ObservationDensityPass;

impl Pass for ObservationDensityPass {
    fn name(&self) -> &'static str {
        "observation-density"
    }

    fn description(&self) -> &'static str {
        "opt-in heuristic: fraction of logic observed at outputs"
    }

    fn run(
        &self,
        cx: &Analysis<'_>,
        config: &CheckerConfig,
        _prior: &Prior<'_>,
        findings: &mut Vec<Finding>,
    ) {
        if !config.observation.enable {
            return;
        }
        let nl = cx.netlist();
        let gates = nl
            .gates()
            .iter()
            .filter(|g| g.kind != GateKind::Input)
            .count();
        if gates < config.observation.min_gates {
            return;
        }
        let density = nl.outputs().len() as f64 / gates as f64;
        if density > config.observation.density_threshold {
            findings.push(Finding::new(
                CheckKind::ObservationDensity,
                Severity::Warn,
                self.name(),
                format!(
                    "{} of {gates} logic cells observed at outputs (density {density:.2})",
                    nl.outputs().len()
                ),
            ));
        }
    }
}
