//! Subgraph-signature matching for known-bad motifs.

use crate::analysis::Analysis;
use crate::config::CheckerConfig;
use crate::diag::{span_of, CheckKind, Finding, Severity};
use crate::pass::{Pass, Prior};
use slm_netlist::{GateKind, NetId};

/// Matches the two known-bad sensor motifs even when obfuscated with
/// interposed buffers:
///
/// * **Ring-oscillator cell** — a combinational loop in which every
///   member has exactly one in-loop fanin (a simple cycle) and the
///   total inversion is odd, regardless of how many buffers pad the
///   ring.
/// * **Tapped delay chain** — a long path of *observed* nets (each
///   driving a primary output, possibly through buffers) with at most a
///   small amount of unobserved logic between consecutive taps. This is
///   the shape of every TDC: the plain buffer line, the identity-gate
///   obfuscation, and the carry-chain-as-TDC all reduce to it on the
///   buffer-collapsed graph.
pub struct SignaturePass;

impl SignaturePass {
    fn match_rings(&self, cx: &Analysis<'_>, config: &CheckerConfig, findings: &mut Vec<Finding>) {
        let nl = cx.netlist();
        let mut in_comp = vec![false; nl.len()];
        let mut reported = 0usize;
        let mut skipped = 0usize;
        for comp in cx.loops() {
            for &id in comp {
                in_comp[id.index()] = true;
            }
            let simple_cycle = comp.iter().all(|&id| {
                let mut seen: Option<NetId> = None;
                let mut distinct = 0usize;
                for &f in &nl.gate(id).fanin {
                    if in_comp[f.index()] && seen != Some(f) {
                        seen = Some(f);
                        distinct += 1;
                    }
                }
                distinct == 1
            });
            let stages = comp
                .iter()
                .filter(|&&id| nl.gate(id).kind != GateKind::Buf)
                .count();
            let inverting = comp
                .iter()
                .filter(|&&id| nl.gate(id).kind.is_inverting())
                .count();
            for &id in comp {
                in_comp[id.index()] = false;
            }
            if !(simple_cycle && stages >= config.signature.min_ring_stages && inverting % 2 == 1) {
                continue;
            }
            if reported == config.signature.max_reported {
                skipped += 1;
                continue;
            }
            reported += 1;
            findings.push(
                Finding::new(
                    CheckKind::KnownBadMotif,
                    Severity::Reject,
                    self.name(),
                    format!(
                        "ring-oscillator motif: {stages} logic stages, {} interposed buffers, \
                         odd inversion",
                        comp.len() - stages
                    ),
                )
                .with_witness(comp[0])
                .with_span(span_of(nl, comp)),
            );
        }
        if skipped > 0 {
            findings.push(Finding::new(
                CheckKind::KnownBadMotif,
                Severity::Reject,
                self.name(),
                format!("{skipped} further ring-oscillator motifs beyond signature.max_reported"),
            ));
        }
    }

    fn match_tapped_chain(
        &self,
        cx: &Analysis<'_>,
        config: &CheckerConfig,
        findings: &mut Vec<Finding>,
    ) {
        let nl = cx.netlist();
        // Cyclic designs never reach a meaningful topological order; the
        // ring matcher and the loop pass own that territory.
        let Ok(order) = nl.topological_order() else {
            return;
        };
        let collapsed = cx.collapsed();
        let n = nl.len();
        // An "anchor" is a net that is observed at a primary output once
        // buffers are collapsed away — the tap points of a sensor.
        let mut anchor = vec![false; n];
        for &(_, o) in nl.outputs() {
            anchor[collapsed[o.index()].index()] = true;
        }
        let gap = config.signature.max_unobserved_gap as u32;
        const FAR: u32 = u32::MAX;
        // Longest anchor-chain ending at each net's most recent anchor,
        // with the count of unobserved non-buffer gates since it.
        let mut chain = vec![0u32; n];
        let mut hops = vec![FAR; n];
        let mut last: Vec<Option<NetId>> = vec![None; n];
        let mut parent: Vec<Option<NetId>> = vec![None; n];
        let mut best: Option<NetId> = None;
        for &v in order {
            let g = nl.gate(v);
            let mut c_chain = 0u32;
            let mut c_hops = FAR;
            let mut c_last: Option<NetId> = None;
            for &f in &g.fanin {
                let (fc, fh) = (chain[f.index()], hops[f.index()]);
                if fc > c_chain || (fc == c_chain && fh < c_hops) {
                    c_chain = fc;
                    c_hops = fh;
                    c_last = last[f.index()];
                }
            }
            let vi = v.index();
            if anchor[vi] {
                if c_chain >= 1 && c_hops <= gap {
                    chain[vi] = c_chain + 1;
                    parent[vi] = c_last;
                } else {
                    chain[vi] = 1;
                }
                hops[vi] = 0;
                last[vi] = Some(v);
                if best.is_none_or(|b| chain[b.index()] < chain[vi]) {
                    best = Some(v);
                }
            } else if c_chain >= 1 {
                let grown = if g.kind == GateKind::Buf {
                    c_hops
                } else {
                    c_hops.saturating_add(1)
                };
                if grown <= gap {
                    chain[vi] = c_chain;
                    hops[vi] = grown;
                    last[vi] = c_last;
                }
            }
        }
        let Some(end) = best else { return };
        let length = chain[end.index()] as usize;
        if length < config.signature.min_chain_stages {
            return;
        }
        // Reconstruct the observed stages, oldest first.
        let mut stages = Vec::with_capacity(length);
        let mut cur = Some(end);
        while let Some(v) = cur {
            stages.push(v);
            cur = parent[v.index()];
        }
        stages.reverse();
        findings.push(
            Finding::new(
                CheckKind::KnownBadMotif,
                Severity::Reject,
                self.name(),
                format!(
                    "tapped delay-chain motif: {length} observed stages, \
                     at most {gap} unobserved gates between taps"
                ),
            )
            .with_witness(end)
            .with_span(span_of(nl, &stages)),
        );
    }
}

impl Pass for SignaturePass {
    fn name(&self) -> &'static str {
        "signature"
    }

    fn description(&self) -> &'static str {
        "known-bad subgraph motifs (RO cell, tapped delay chain) modulo buffers"
    }

    fn run(
        &self,
        cx: &Analysis<'_>,
        config: &CheckerConfig,
        _prior: &Prior<'_>,
        findings: &mut Vec<Finding>,
    ) {
        self.match_rings(cx, config, findings);
        self.match_tapped_chain(cx, config, findings);
    }
}
