//! Structured diagnostics: finding kinds, severities, spans and the
//! per-netlist report.

use serde::{Deserialize, Serialize};
use slm_netlist::{NetId, Netlist};

/// Maximum number of nets a single diagnostic span carries.
///
/// Spans are machine-readable evidence, not a dump: a 50k-net loop is
/// reported with its size in the detail text and its first
/// `MAX_SPAN_NETS` members in the span.
pub const MAX_SPAN_NETS: usize = 64;

/// Categories of findings a checker can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CheckKind {
    /// A combinational feedback loop (self-oscillator).
    CombinationalLoop,
    /// A long buffer/inverter chain with dense observation taps.
    DelayLineSensor,
    /// A large array of near-identical trivial cells.
    ExcessiveFanoutArray,
    /// Requested clock exceeds the STA fmax (strict timing check).
    TimingOverclock,
    /// High observation density: an unusually large fraction of the
    /// logic is tapped to outputs (sensor-like). **Opt-in and
    /// deliberately over-aggressive** — it also flags ordinary adders,
    /// demonstrating the paper's point that tightening structural
    /// heuristics far enough to catch benign-logic sensors rejects
    /// legitimate designs.
    ObservationDensity,
    /// A clock input used as a data signal in combinational logic.
    ClockAsData,
    /// SCOAP-style sensor-likeness: many endpoint registers sit at the
    /// end of deep, narrow logic cones (chain-shaped controllability).
    SensorLikeEndpoints,
    /// A known-bad subgraph signature (ring-oscillator cell, tapped
    /// delay-chain) matched even through interposed buffers.
    KnownBadMotif,
    /// Clock-rate toggling propagates through combinational logic and
    /// converges on wide observation fan-in (semantic dataflow pass).
    ClockTaint,
    /// Estimated switching activity marks the design as a power sensor:
    /// clock-driven transition density observable at many outputs, or a
    /// glitch-amplification bound confirming SCOAP sensor-likeness.
    SwitchingActivity,
    /// Bits/cycle of clock-rate state observable at tenant outputs (the
    /// paper's TDC thermometer-readout model).
    ObservationBandwidth,
}

impl CheckKind {
    /// Short stable identifier used in reports and the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckKind::CombinationalLoop => "combinational-loop",
            CheckKind::DelayLineSensor => "delay-line-sensor",
            CheckKind::ExcessiveFanoutArray => "excessive-fanout-array",
            CheckKind::TimingOverclock => "timing-overclock",
            CheckKind::ObservationDensity => "observation-density",
            CheckKind::ClockAsData => "clock-as-data",
            CheckKind::SensorLikeEndpoints => "sensor-like-endpoints",
            CheckKind::KnownBadMotif => "known-bad-motif",
            CheckKind::ClockTaint => "clock-taint",
            CheckKind::SwitchingActivity => "switching-activity",
            CheckKind::ObservationBandwidth => "observation-bandwidth",
        }
    }
}

/// How serious a finding is.
///
/// The ordering is total: `Info < Warn < Reject`. Suppressions apply to
/// `Info` and `Warn` only — a `Reject` can never be suppressed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Severity {
    /// Informational: recorded in the report, never fails a scan.
    Info,
    /// Suspicious but heuristic: fails a scan unless suppressed.
    #[default]
    Warn,
    /// Definitive structural evidence of misuse: always fails a scan.
    Reject,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Reject => "reject",
        }
    }
}

/// One net referenced by a diagnostic span: the raw id plus its
/// source-level name when the netlist has one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanNet {
    /// Net id in the scanned netlist.
    pub net: NetId,
    /// Source name, if the net is named.
    pub name: Option<String>,
}

impl SpanNet {
    /// Builds the span entry for `id` in `nl`.
    pub fn of(nl: &Netlist, id: NetId) -> Self {
        SpanNet {
            net: id,
            name: nl.net_name(id).map(str::to_owned),
        }
    }
}

/// Builds a (capped) span from a net list.
pub fn span_of(nl: &Netlist, nets: &[NetId]) -> Vec<SpanNet> {
    nets.iter()
        .take(MAX_SPAN_NETS)
        .map(|&id| SpanNet::of(nl, id))
        .collect()
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Category.
    pub kind: CheckKind,
    /// Severity tier.
    pub severity: Severity,
    /// Name of the pass that raised the finding (empty for findings
    /// produced outside the pass manager, e.g. the timing check).
    pub pass: String,
    /// A net involved in the finding (loop witness, chain head, …).
    pub witness: Option<NetId>,
    /// Machine-readable evidence: the nets that constitute the matched
    /// structure (full loop membership, chain stages, …), capped at
    /// [`MAX_SPAN_NETS`].
    pub span: Vec<SpanNet>,
    /// Human-readable explanation.
    pub detail: String,
    /// Suppression reason when an allowlist rule matched. Suppressed
    /// findings stay in the report for auditability but no longer count
    /// against [`CheckReport::is_clean`].
    pub suppressed: Option<String>,
}

impl Finding {
    /// Creates an unsuppressed finding with an empty span.
    pub fn new(kind: CheckKind, severity: Severity, pass: &str, detail: String) -> Self {
        Finding {
            kind,
            severity,
            pass: pass.to_owned(),
            witness: None,
            span: Vec::new(),
            detail,
            suppressed: None,
        }
    }

    /// Sets the witness net.
    pub fn with_witness(mut self, id: NetId) -> Self {
        self.witness = Some(id);
        self
    }

    /// Sets the evidence span (already capped by the caller or via
    /// [`span_of`]).
    pub fn with_span(mut self, span: Vec<SpanNet>) -> Self {
        self.span = span;
        self
    }

    /// Whether the finding currently counts against the verdict.
    pub fn is_active(&self) -> bool {
        self.suppressed.is_none()
    }
}

/// The verdict over one tenant netlist.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CheckReport {
    /// Name of the scanned netlist.
    pub netlist: String,
    /// Total net count (gates + inputs) of the scanned netlist.
    pub nets: usize,
    /// All findings, in pass order.
    pub findings: Vec<Finding>,
}

impl CheckReport {
    /// An empty report for `nl`.
    pub fn for_netlist(nl: &Netlist) -> Self {
        CheckReport {
            netlist: nl.name().to_owned(),
            nets: nl.len(),
            findings: Vec::new(),
        }
    }

    /// The findings that count: not suppressed.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_active())
    }

    /// Whether no active finding is `Warn` or worse.
    ///
    /// `Info` findings and suppressed findings never dirty a report.
    pub fn is_clean(&self) -> bool {
        !self.active().any(|f| f.severity >= Severity::Warn)
    }

    /// Whether a specific category was raised (and not suppressed).
    pub fn flagged(&self, kind: CheckKind) -> bool {
        self.active().any(|f| f.kind == kind)
    }

    /// The worst active severity, or `None` for a finding-free report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.active().map(|f| f.severity).max()
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}
