//! Property-based tests for the structural checker: no false positives
//! on generated benign logic, no false negatives on the known-malicious
//! families, across their whole parameter ranges.

use proptest::prelude::*;
use slm_checker::{
    check_structure, check_timing, CheckKind, CheckerConfig, PassManager, ScanCache, Severity,
    Suppression, TaintConfig,
};
use slm_netlist::generators::{
    alu, array_multiplier, carry_lookahead_adder, carry_select_adder, carry_sensor,
    equality_comparator, kogge_stone_adder, parity_tree, ring_oscillator, ripple_carry_adder,
    tdc_delay_line, wallace_multiplier, zoo,
};
use slm_netlist::Netlist;
use slm_timing::DelayModel;

/// The full-pipeline config a zoo entry is admitted under: defaults
/// plus the entry's contract-declared clock pins.
fn zoo_config(declared: &[&str]) -> CheckerConfig {
    CheckerConfig {
        taint: TaintConfig {
            declared_clocks: declared.iter().map(|s| s.to_string()).collect(),
            ..TaintConfig::default()
        },
        ..CheckerConfig::default()
    }
}

/// A strategy over arbitrary suppression rules, including maximally
/// greedy ones (all fields `None` matches every finding). The vendored
/// proptest shim has no combinators, so this composes three `select`
/// strategies by hand.
struct SuppressionStrategy {
    kinds: proptest::sample::Select<Option<CheckKind>>,
    passes: proptest::sample::Select<Option<String>>,
    nets: proptest::sample::Select<Option<String>>,
}

impl Strategy for SuppressionStrategy {
    type Value = Suppression;
    fn pick(&self, rng: &mut proptest::test_runner::TestRng) -> Suppression {
        Suppression {
            kind: self.kinds.pick(rng),
            pass: self.passes.pick(rng),
            net_name: self.nets.pick(rng),
            reason: "proptest rule".to_string(),
        }
    }
}

fn any_suppression() -> SuppressionStrategy {
    SuppressionStrategy {
        kinds: proptest::sample::select(vec![
            None,
            Some(CheckKind::CombinationalLoop),
            Some(CheckKind::DelayLineSensor),
            Some(CheckKind::ExcessiveFanoutArray),
            Some(CheckKind::ObservationDensity),
            Some(CheckKind::ClockAsData),
            Some(CheckKind::SensorLikeEndpoints),
            Some(CheckKind::KnownBadMotif),
        ]),
        passes: proptest::sample::select(vec![
            None,
            Some("comb-loop".to_string()),
            Some("delay-line".to_string()),
            Some("trivial-array".to_string()),
            Some("clock-as-data".to_string()),
            Some("scoap-sensor".to_string()),
            Some("signature".to_string()),
        ]),
        nets: proptest::sample::select(vec![
            None,
            Some("tdc_buf0".to_string()),
            Some("ro_nand".to_string()),
            Some("t[0]".to_string()),
        ]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every benign generator output passes the structural checker at
    /// every size — the stealth property must not depend on a lucky
    /// width.
    #[test]
    fn benign_circuits_never_flagged(n in 1usize..48, m in 2usize..12) {
        for nl in [
            ripple_carry_adder(n).unwrap(),
            carry_lookahead_adder(n).unwrap(),
            carry_select_adder(n).unwrap(),
            kogge_stone_adder(n).unwrap(),
            alu(n).unwrap(),
            array_multiplier(m).unwrap(),
            wallace_multiplier(m).unwrap(),
            equality_comparator(n).unwrap(),
            parity_tree(n).unwrap(),
        ] {
            let r = check_structure(&nl);
            prop_assert!(r.is_clean(), "{} flagged: {:?}", nl.name(), r.findings);
        }
    }

    /// Ring oscillators are flagged at every stage count.
    #[test]
    fn ring_oscillators_always_flagged(stages in 1usize..40) {
        let stages = stages * 2; // must be even to oscillate
        let ro = ring_oscillator(stages).unwrap();
        prop_assert!(check_structure(&ro).flagged(CheckKind::CombinationalLoop));
    }

    /// TDC delay lines are flagged from the minimum sensor length up.
    #[test]
    fn tdc_lines_flagged_above_threshold(stages in 16usize..128) {
        let tdc = tdc_delay_line(stages).unwrap();
        prop_assert!(
            check_structure(&tdc).flagged(CheckKind::DelayLineSensor),
            "{stages}-stage line must be flagged"
        );
    }

    /// The strict timing check is exact: it fires iff the requested
    /// clock exceeds fmax.
    #[test]
    fn strict_timing_matches_sta(n in 4usize..64, req_pct in 10u32..400) {
        let nl = ripple_carry_adder(n).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let fmax = ann.sta().unwrap().fmax_mhz();
        let requested = fmax * f64::from(req_pct) / 100.0;
        let fired = check_timing(&ann, requested).flagged(CheckKind::TimingOverclock);
        prop_assert_eq!(fired, requested > fmax);
    }

    /// No set of suppression rules — however greedy — ever hides a
    /// `Reject` finding: every malicious zoo design stays flagged
    /// (under the full structural + semantic pipeline, with each
    /// entry's contract-declared clocks), and every `Reject` finding
    /// stays active in the report.
    #[test]
    fn suppression_never_hides_a_reject(
        rules in proptest::collection::vec(any_suppression(), 0..8)
    ) {
        let pm = PassManager::full();
        for entry in zoo().iter().filter(|e| e.malicious) {
            let config = CheckerConfig {
                suppressions: rules.clone(),
                ..zoo_config(entry.declared_clocks)
            };
            let report = pm.run(&entry.netlist, &config);
            for f in &report.findings {
                if f.severity >= Severity::Reject {
                    prop_assert!(
                        f.suppressed.is_none(),
                        "{}: Reject finding suppressed: {:?}",
                        entry.name,
                        f
                    );
                }
            }
            prop_assert!(
                !report.is_clean(),
                "{}: suppressions laundered a malicious design",
                entry.name
            );
        }
    }

    /// Cached rescans are bit-identical to uncached scans for every
    /// design shape — a cold populate, a warm replay, and a cacheless
    /// run all serialize to the same report.
    #[test]
    fn cached_scans_are_bit_identical(n in 2usize..32, tap in 1usize..6) {
        let pm = PassManager::full();
        let designs: Vec<Netlist> = vec![
            ripple_carry_adder(n).unwrap(),
            carry_sensor(n.max(4), tap).unwrap(),
            tdc_delay_line(n + 16).unwrap(),
            ring_oscillator(2 * n).unwrap(),
        ];
        let config = zoo_config(&["sense"]);
        let cache = ScanCache::in_memory();
        for nl in &designs {
            let plain = pm.run(nl, &config);
            let cold = pm.run_cached(nl, &config, &cache);
            let warm = pm.run_cached(nl, &config, &cache);
            prop_assert_eq!(plain.to_json(), cold.to_json(), "{}", nl.name());
            prop_assert_eq!(cold.to_json(), warm.to_json(), "{}", nl.name());
        }
        prop_assert!(cache.hits() >= (pm.pass_names().len() * designs.len()) as u64);
    }

    /// Scan reports do not depend on the worker count: intra-scan
    /// level parallelism and batch parallelism both serialize
    /// identically to the serial pipeline.
    #[test]
    fn parallel_scans_are_bit_identical(n in 2usize..32, workers in 2usize..8) {
        let pm = PassManager::full();
        let config = zoo_config(&["sense"]);
        let designs: Vec<Netlist> = vec![
            carry_sensor(n.max(4), 4).unwrap(),
            alu(n).unwrap(),
            tdc_delay_line(n + 16).unwrap(),
        ];
        let refs: Vec<&Netlist> = designs.iter().collect();
        let serial: Vec<String> = refs.iter().map(|nl| pm.run(nl, &config).to_json()).collect();
        for (i, nl) in refs.iter().enumerate() {
            let par = pm.run_parallel(nl, &config, workers);
            prop_assert_eq!(&par.to_json(), &serial[i], "{}", nl.name());
        }
        let batch = pm.run_batch(&refs, &config, None, workers);
        for (i, report) in batch.iter().enumerate() {
            prop_assert_eq!(&report.to_json(), &serial[i], "{}", refs[i].name());
        }
    }
}
