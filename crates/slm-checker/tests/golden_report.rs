//! Golden-file tests for the machine-readable diagnostic format.
//!
//! The JSON report is an interchange format — downstream tooling (CI
//! matrix jobs, the scheduled drift check) parses it, so its shape must
//! not move silently. Each golden file is the exact `to_json()` output
//! for a deterministic netlist; a deliberate format change means
//! regenerating the file, and the diff documents the change.

use slm_checker::{check_structure, CheckKind, CheckerConfig, PassManager};
use slm_netlist::generators::{ring_oscillator, tdc_delay_line};

/// Compares a report against its golden file, with a diff-friendly
/// failure message.
fn assert_golden(actual: &str, golden: &str, name: &str) {
    if actual != golden {
        for (i, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
            assert_eq!(
                a,
                g,
                "golden {name} diverges at line {} — if the format change is \
                 intentional, regenerate the golden file",
                i + 1
            );
        }
        panic!(
            "golden {name} length mismatch: {} vs {} lines",
            actual.lines().count(),
            golden.lines().count()
        );
    }
}

#[test]
fn ring_oscillator_report_matches_golden() {
    let nl = ring_oscillator(6).unwrap();
    let report = check_structure(&nl);
    assert_golden(
        &report.to_json(),
        include_str!("golden/ring_oscillator_6.json"),
        "ring_oscillator_6.json",
    );
}

#[test]
fn clean_report_matches_golden() {
    let nl = slm_netlist::generators::ripple_carry_adder(4).unwrap();
    let report = check_structure(&nl);
    assert_golden(
        &report.to_json(),
        include_str!("golden/ripple_carry_adder_4.json"),
        "ripple_carry_adder_4.json",
    );
}

#[test]
fn suppressed_finding_keeps_its_record_in_the_golden() {
    let nl = tdc_delay_line(16).unwrap();
    let mut config = CheckerConfig::default();
    config.suppressions.push(slm_checker::Suppression {
        kind: Some(CheckKind::SensorLikeEndpoints),
        pass: None,
        net_name: None,
        reason: "audited: measurement column for tenant A".to_string(),
    });
    let report = PassManager::structural().run(&nl, &config);
    assert_golden(
        &report.to_json(),
        include_str!("golden/tdc_delay_line_16_suppressed.json"),
        "tdc_delay_line_16_suppressed.json",
    );
}
