//! `slm-scan` emits machine-readable JSON; downstream tooling parses it
//! with a real JSON parser, so the output must be *syntactically* valid
//! JSON, not merely JSON-shaped. The vendored serializer has no parser,
//! so this test brings its own minimal recursive-descent validator —
//! it accepts exactly the RFC 8259 grammar and nothing more.

use slm_checker::cli;

/// A minimal JSON syntax validator. Returns the byte offset of the
/// first syntax error, or `Ok(())` for a valid document.
struct Validator<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Validator<'a> {
    fn validate(text: &'a str) -> Result<(), usize> {
        let mut v = Validator {
            bytes: text.as_bytes(),
            pos: 0,
        };
        v.skip_ws();
        v.value()?;
        v.skip_ws();
        if v.pos != v.bytes.len() {
            return Err(v.pos);
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), usize> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.pos)
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), usize> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.pos)
        }
    }

    fn value(&mut self) -> Result<(), usize> {
        match self.peek().ok_or(self.pos)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.literal("true"),
            b'f' => self.literal("false"),
            b'n' => self.literal("null"),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.pos),
        }
    }

    fn object(&mut self) -> Result<(), usize> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.pos),
            }
        }
    }

    fn array(&mut self) -> Result<(), usize> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.pos),
            }
        }
    }

    fn string(&mut self) -> Result<(), usize> {
        self.expect(b'"')?;
        loop {
            match self.peek().ok_or(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or(self.pos)? {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => self.pos += 1,
                        b'u' => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                                    return Err(self.pos);
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.pos),
                    }
                }
                0x00..=0x1f => return Err(self.pos),
                _ => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), usize> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek().ok_or(self.pos)? {
            b'0' => self.pos += 1,
            b'1'..=b'9' => self.digits()?,
            _ => return Err(self.pos),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }

    fn digits(&mut self) -> Result<(), usize> {
        if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
            return Err(self.pos);
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }
}

fn assert_valid_json(text: &str, what: &str) {
    if let Err(pos) = Validator::validate(text) {
        let lo = pos.saturating_sub(40);
        let hi = (pos + 40).min(text.len());
        panic!(
            "{what}: invalid JSON at byte {pos}: ...{}...",
            &text[lo..hi]
        );
    }
}

#[test]
fn validator_rejects_malformed_documents() {
    for bad in [
        "",
        "{",
        "[1,]",
        "{\"a\":}",
        "{\"a\" 1}",
        "01",
        "1.",
        "\"\\x\"",
        "nul",
        "[1] trailing",
        "{\"a\":1,}",
    ] {
        assert!(Validator::validate(bad).is_err(), "accepted: {bad:?}");
    }
    for good in [
        "null",
        "-12.5e+3",
        "[]",
        "{\"a\": [1, \"b\\n\", {\"c\": true}], \"d\": null}",
        "\"\\u00e9\"",
    ] {
        assert!(Validator::validate(good).is_ok(), "rejected: {good:?}");
    }
}

#[test]
fn zoo_scan_emits_valid_json() {
    let (out, _code) =
        cli::run(&["--zoo".to_string(), "--assert-matrix".to_string()]).expect("zoo scan must run");
    assert_valid_json(&out, "slm-scan --zoo --assert-matrix");
}

#[test]
fn single_generator_scan_emits_valid_json_compact_and_pretty() {
    for extra in [None, Some("--compact")] {
        let mut args = vec![
            "--generator".to_string(),
            "tdc_obfuscated".to_string(),
            "--clock-mhz".to_string(),
            "300".to_string(),
        ];
        if let Some(flag) = extra {
            args.push(flag.to_string());
        }
        let (out, code) = cli::run(&args).expect("generator scan must run");
        assert_eq!(code, 2, "a rejected design must exit 2");
        assert_valid_json(&out, "slm-scan --generator tdc_obfuscated");
    }
}

#[test]
fn batch_scan_emits_valid_jsonl() {
    let dir = std::env::temp_dir().join(format!("slm_scan_jsonl_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bench = dir.join("c17.bench");
    std::fs::write(
        &bench,
        slm_netlist::bench::write(&slm_netlist::generators::c17()),
    )
    .unwrap();
    let list = dir.join("inputs.txt");
    std::fs::write(
        &list,
        format!("{}\n/nonexistent/missing.bench\n", bench.display()),
    )
    .unwrap();
    let (out, code) = cli::run(&["--batch".to_string(), list.to_str().unwrap().to_string()])
        .expect("batch scan must run");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(code, 3, "missing input dominates the batch code");
    // every JSONL line is independently valid JSON
    for line in out.lines() {
        assert_valid_json(line, "slm-scan --batch line");
    }
}

#[test]
fn golden_files_are_valid_json() {
    for (name, text) in [
        (
            "ring_oscillator_6.json",
            include_str!("golden/ring_oscillator_6.json"),
        ),
        (
            "ripple_carry_adder_4.json",
            include_str!("golden/ripple_carry_adder_4.json"),
        ),
        (
            "tdc_delay_line_16_suppressed.json",
            include_str!("golden/tdc_delay_line_16_suppressed.json"),
        ),
    ] {
        assert_valid_json(text, name);
    }
}
