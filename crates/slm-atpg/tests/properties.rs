//! Property-based tests for the stimulus searcher.

use proptest::prelude::*;
use slm_atpg::{Objective, StimulusSearch};
use slm_netlist::generators::{array_multiplier, ripple_carry_adder};
use slm_timing::{simulate_transition, DelayModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The search is deterministic in its seed.
    #[test]
    fn search_reproducible(seed in any::<u64>()) {
        let nl = ripple_carry_adder(8).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let s1 = StimulusSearch::new(&ann, Objective::MaxSettleTime { endpoint: 7 }).run(4, seed);
        let s2 = StimulusSearch::new(&ann, Objective::MaxSettleTime { endpoint: 7 }).run(4, seed);
        prop_assert_eq!(s1, s2);
    }

    /// No stimulus can beat the STA bound at its endpoint, and the
    /// reported score always re-simulates exactly.
    #[test]
    fn score_bounded_by_sta_and_exact(seed in any::<u64>(), endpoint in 0usize..9) {
        let nl = ripple_carry_adder(8).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let bound = ann.sta().unwrap().output_arrivals_ps()[endpoint];
        let found = StimulusSearch::new(&ann, Objective::MaxSettleTime { endpoint }).run(3, seed);
        // per-hop femtosecond rounding in the event simulator can nudge
        // an arrival a fraction of a picosecond past the f64 STA value
        prop_assert!(found.score <= bound + 0.05, "score {} > STA {bound}", found.score);
        let waves = simulate_transition(&ann, &found.reset, &found.measure).unwrap();
        let resim = waves.output_waves()[endpoint].settle_time_fs() as f64 / 1000.0;
        prop_assert!((resim - found.score).abs() < 1e-6);
    }

    /// The window objective's score never exceeds the output count and
    /// re-simulates exactly.
    #[test]
    fn window_score_consistent(seed in any::<u64>()) {
        let nl = array_multiplier(5).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let (lo, hi) = (400.0, 2500.0);
        let found = StimulusSearch::new(
            &ann,
            Objective::MaxActiveEndpoints { window_lo_ps: lo, window_hi_ps: hi },
        )
        .run(2, seed);
        prop_assert!(found.score <= nl.outputs().len() as f64);
        let waves = simulate_transition(&ann, &found.reset, &found.measure).unwrap();
        let count = waves
            .output_waves()
            .iter()
            .filter(|w| {
                w.transitions
                    .iter()
                    .any(|&(t, _)| t >= (lo * 1000.0) as u64 && t <= (hi * 1000.0) as u64)
            })
            .count() as f64;
        prop_assert_eq!(count, found.score);
    }

    /// More restarts never yield a worse result (monotone improvement).
    #[test]
    fn restarts_monotone(seed in any::<u64>()) {
        let nl = ripple_carry_adder(6).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let obj = Objective::MaxSettleTime { endpoint: 5 };
        let few = StimulusSearch::new(&ann, obj).run(1, seed);
        let more = StimulusSearch::new(&ann, obj).run(5, seed);
        prop_assert!(more.score >= few.score);
    }
}
