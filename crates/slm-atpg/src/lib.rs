//! Stimulus search: finding reset/measure vector pairs that sensitize
//! long paths in arbitrary circuits.
//!
//! The paper hand-crafts stimuli for its two circuits (`A = 2^n − 1,
//! B = 1` for the adder) and notes in Section VI that "in a more complex
//! circuit, Automatic Test Pattern Generation (ATPG) tools and path
//! delay testing can be used to find such stimuli". This crate
//! implements that extension: a guided stochastic search (random
//! restarts + greedy bit-flip hill climbing) that maximizes either the
//! latest arrival at a chosen endpoint or the number of endpoints with
//! transitions inside a target capture window.
//!
//! The searcher is exact in its objective — it scores candidate pairs
//! with the same event-driven simulation the sensor model uses — so a
//! found stimulus is a working sensor configuration by construction.
//!
//! # Example
//!
//! ```
//! use slm_atpg::{StimulusSearch, Objective};
//! use slm_netlist::generators::ripple_carry_adder;
//! use slm_timing::DelayModel;
//!
//! let nl = ripple_carry_adder(16).unwrap();
//! let ann = DelayModel::default().annotate(&nl);
//! let search = StimulusSearch::new(&ann, Objective::MaxSettleTime { endpoint: 15 });
//! let found = search.run(40, 1);
//! // The search should rediscover a deep carry-rippling pattern:
//! // at least 60% of the STA bound at sum[15].
//! let bound = ann.sta().unwrap().output_arrivals_ps()[15];
//! assert!(found.score >= 0.6 * bound, "score {} vs bound {}", found.score, bound);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use slm_pdn::noise::Rng64;
use slm_timing::{simulate_transition, AnnotatedDelays};

/// What the search maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Latest transition time (fs, scored in ps) at one endpoint — path
    /// delay sensitization for a single-bit sensor.
    MaxSettleTime {
        /// Output index to sensitize.
        endpoint: usize,
    },
    /// Number of endpoints whose waveform transitions inside
    /// `[window_lo_ps, window_hi_ps]` — maximizing usable sensor bits at
    /// a given overclock.
    MaxActiveEndpoints {
        /// Window start, ps.
        window_lo_ps: f64,
        /// Window end, ps.
        window_hi_ps: f64,
    },
}

/// A discovered stimulus pair and its score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoundStimulus {
    /// The reset vector.
    pub reset: Vec<bool>,
    /// The measure vector.
    pub measure: Vec<bool>,
    /// Objective value (ps for settle time, count for active endpoints).
    pub score: f64,
    /// Stimulus pairs evaluated.
    pub evaluations: u64,
}

/// The stimulus searcher.
#[derive(Debug)]
pub struct StimulusSearch<'a> {
    ann: &'a AnnotatedDelays,
    objective: Objective,
}

impl<'a> StimulusSearch<'a> {
    /// Creates a searcher over an annotated netlist.
    pub fn new(ann: &'a AnnotatedDelays, objective: Objective) -> Self {
        StimulusSearch { ann, objective }
    }

    fn score(&self, reset: &[bool], measure: &[bool]) -> f64 {
        let Ok(waves) = simulate_transition(self.ann, reset, measure) else {
            return f64::NEG_INFINITY;
        };
        match self.objective {
            Objective::MaxSettleTime { endpoint } => {
                let outs = waves.output_waves();
                outs.get(endpoint)
                    .map_or(f64::NEG_INFINITY, |w| w.settle_time_fs() as f64 / 1000.0)
            }
            Objective::MaxActiveEndpoints {
                window_lo_ps,
                window_hi_ps,
            } => {
                let lo = (window_lo_ps * 1000.0) as u64;
                let hi = (window_hi_ps * 1000.0) as u64;
                waves
                    .output_waves()
                    .iter()
                    .filter(|w| w.transitions.iter().any(|&(t, _)| t >= lo && t <= hi))
                    .count() as f64
            }
        }
    }

    /// Runs `restarts` random restarts of greedy bit-flip hill climbing
    /// with the given seed; returns the best stimulus found.
    pub fn run(&self, restarts: usize, seed: u64) -> FoundStimulus {
        let n = self.ann.netlist().inputs().len();
        let mut rng = Rng64::new(seed);
        let mut best = FoundStimulus {
            reset: vec![false; n],
            measure: vec![false; n],
            score: f64::NEG_INFINITY,
            evaluations: 0,
        };
        let mut evals = 0u64;
        for _ in 0..restarts.max(1) {
            let mut reset: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
            let mut measure: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
            let mut cur = self.score(&reset, &measure);
            evals += 1;
            // Greedy sweep: try flipping each bit of each vector, accept
            // improvements, repeat until a full sweep yields nothing.
            let mut improved = true;
            while improved {
                improved = false;
                for vec_idx in 0..2 {
                    for i in 0..n {
                        {
                            let v = if vec_idx == 0 {
                                &mut reset
                            } else {
                                &mut measure
                            };
                            v[i] = !v[i];
                        }
                        let s = self.score(&reset, &measure);
                        evals += 1;
                        if s > cur {
                            cur = s;
                            improved = true;
                        } else {
                            let v = if vec_idx == 0 {
                                &mut reset
                            } else {
                                &mut measure
                            };
                            v[i] = !v[i];
                        }
                    }
                }
            }
            if cur > best.score {
                best = FoundStimulus {
                    reset,
                    measure,
                    score: cur,
                    evaluations: 0,
                };
            }
        }
        best.evaluations = evals;
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_netlist::generators::{array_multiplier, ripple_carry_adder};
    use slm_netlist::words;
    use slm_timing::DelayModel;

    #[test]
    fn finds_deep_pattern_on_adder() {
        let n = 12;
        let nl = ripple_carry_adder(n).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let sta_bound = ann.sta().unwrap().output_arrivals_ps()[n - 1];
        let search = StimulusSearch::new(&ann, Objective::MaxSettleTime { endpoint: n - 1 });
        let found = search.run(30, 7);
        assert!(
            found.score >= 0.55 * sta_bound,
            "found {} vs STA bound {sta_bound}",
            found.score
        );
        assert!(found.evaluations > 0);
        // The found stimulus must actually produce that settle time.
        let waves = simulate_transition(&ann, &found.reset, &found.measure).unwrap();
        let settle = waves.output_waves()[n - 1].settle_time_fs() as f64 / 1000.0;
        assert!((settle - found.score).abs() < 1e-6);
    }

    #[test]
    fn hand_pattern_is_near_sta_bound_and_search_competitive() {
        let n = 10;
        let nl = ripple_carry_adder(n).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        // hand stimulus: 0+0 → (2^n-1)+1
        let mut reset = words::to_bits(0, n);
        reset.extend(words::to_bits(0, n));
        let mut measure = words::to_bits((1 << n) - 1, n);
        measure.extend(words::to_bits(1, n));
        let hand = simulate_transition(&ann, &reset, &measure).unwrap();
        let hand_settle = hand.output_waves()[n - 1].settle_time_fs() as f64 / 1000.0;
        let search = StimulusSearch::new(&ann, Objective::MaxSettleTime { endpoint: n - 1 });
        let found = search.run(40, 3);
        assert!(
            found.score >= 0.8 * hand_settle,
            "search {} vs hand {hand_settle}",
            found.score
        );
    }

    #[test]
    fn window_objective_counts_endpoints() {
        let nl = array_multiplier(6).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let search = StimulusSearch::new(
            &ann,
            Objective::MaxActiveEndpoints {
                window_lo_ps: 500.0,
                window_hi_ps: 4000.0,
            },
        );
        let found = search.run(10, 5);
        assert!(
            found.score >= 4.0,
            "found only {} active endpoints",
            found.score
        );
        // verify by re-simulation
        let waves = simulate_transition(&ann, &found.reset, &found.measure).unwrap();
        let count = waves
            .output_waves()
            .iter()
            .filter(|w| {
                w.transitions
                    .iter()
                    .any(|&(t, _)| (500_000..=4_000_000).contains(&t))
            })
            .count();
        assert_eq!(count as f64, found.score);
    }

    #[test]
    fn bad_endpoint_scores_neg_infinity() {
        let nl = ripple_carry_adder(4).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let search = StimulusSearch::new(&ann, Objective::MaxSettleTime { endpoint: 99 });
        let found = search.run(2, 1);
        assert_eq!(found.score, f64::NEG_INFINITY);
    }
}
