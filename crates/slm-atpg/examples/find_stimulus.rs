//! Stimulus finder: searches reset/measure vector pairs that sensitize a
//! circuit's endpoints near a target capture window — the tool that
//! produced the C6288 stimulus shipped in `slm-fabric`.
//!
//! ```sh
//! cargo run --release -p slm-atpg --example find_stimulus
//! ```

use slm_atpg::{Objective, StimulusSearch};
use slm_netlist::generators::c6288;
use slm_netlist::words;
use slm_timing::DelayModel;

fn main() {
    let nl = c6288().unwrap();
    // calibrate like the fabric does: achieved critical path ≈ 5.2 ns
    let ann = DelayModel::default()
        .annotate_for_period(&nl, 5.2, 1.0)
        .unwrap();
    // target: endpoints transitioning near the 300 MHz capture edge
    let search = StimulusSearch::new(
        &ann,
        Objective::MaxActiveEndpoints {
            window_lo_ps: 2700.0,
            window_hi_ps: 4100.0,
        },
    );
    let found = search.run(12, 0xc6288);
    let a = words::from_bits(&found.measure[..16]);
    let b = words::from_bits(&found.measure[16..]);
    let ra = words::from_bits(&found.reset[..16]);
    let rb = words::from_bits(&found.reset[16..]);
    println!(
        "found stimulus with {} of {} endpoints near-critical ({} evaluations)",
        found.score,
        nl.outputs().len(),
        found.evaluations
    );
    println!("reset:   a = {ra:#06x}, b = {rb:#06x}");
    println!("measure: a = {a:#06x}, b = {b:#06x}");
    println!("(shipped stimulus in slm-fabric: 0x0a03*0x0423 -> 0x9d77*0xf7d6, score 19)");
}
