//! A small scoped worker pool for embarrassingly parallel campaign
//! work, plus the deterministic shard planning the campaign stack
//! shares.
//!
//! The whole workspace is offline and dependency-free, so this crate
//! provides the thin slice of `rayon` the campaign stack actually
//! needs: order-preserving parallel map over an index space, built on
//! `std::thread::scope` and an atomic work counter. Tasks are coarse
//! (a trace shard, a zoo design, a block of key candidates), so a
//! mutex-guarded result store costs nothing measurable and keeps the
//! crate `#![forbid(unsafe_code)]`.
//!
//! # Determinism contract
//!
//! Parallel execution must never change results. Every helper here is
//! order-preserving: `par_map(workers, items, f)` returns exactly
//! `items.iter().map(f).collect()` for any worker count, as long as
//! `f` itself depends only on its argument. The campaign layers build
//! on that: work is split into *shards* whose boundaries and seeds
//! ([`ShardPlan`], [`mix_seed`]) depend only on the plan — never on
//! the worker count — so a campaign merged from shard partials is
//! bit-identical whether it ran on one thread or sixteen.
//!
//! # Example
//!
//! ```
//! let squares = slm_par::par_map_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The machine's available parallelism (respecting cgroup/affinity
/// limits), with a floor of one.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a worker-count knob: `0` means "use the machine"
/// ([`available_workers`]), anything else is taken literally.
pub fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        available_workers()
    } else {
        requested
    }
}

/// Maps `0..n` through `f` on up to `workers` threads, returning the
/// results in index order.
///
/// Work is handed out dynamically (an atomic next-index counter), so
/// uneven task costs balance across workers. With `workers <= 1` or
/// `n <= 1` the map runs inline on the calling thread — no threads are
/// spawned and no ordering question arises. `workers == 0` resolves to
/// the machine's available parallelism.
///
/// # Panics
///
/// If `f` panics on any index, the panic is resumed on the calling
/// thread with its original payload once all workers have stopped.
pub fn par_map_indexed<R, F>(workers: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = resolve_workers(workers).min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let results = Mutex::new(slots);
    let panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n || panic.lock().expect("panic slot poisoned").is_some() {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                    Ok(r) => results.lock().expect("result store poisoned")[i] = Some(r),
                    Err(payload) => {
                        panic
                            .lock()
                            .expect("panic slot poisoned")
                            .get_or_insert(payload);
                        break;
                    }
                }
            });
        }
    });
    if let Some(payload) = panic.into_inner().expect("panic slot poisoned") {
        resume_unwind(payload);
    }
    results
        .into_inner()
        .expect("result store poisoned")
        .into_iter()
        .map(|slot| slot.expect("every index visited"))
        .collect()
}

/// Maps a slice through `f` on up to `workers` threads, preserving
/// item order in the result.
///
/// See [`par_map_indexed`] for scheduling and panic semantics.
pub fn par_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(workers, items.len(), |i| f(&items[i]))
}

/// Derives an independent seed for a numbered lane of a campaign.
///
/// The scheme is the same splitmix64 finalizer the in-tree
/// `Rng64::fork` uses: the master seed is perturbed by the lane index
/// times an odd constant and passed through the avalanche rounds, so
/// every lane gets a statistically independent stream and the mapping
/// `(master, lane) → seed` is a pure function — the cornerstone of the
/// parallel determinism contract. Note `mix_seed(s, 0) != s`: even
/// lane 0 is a fresh stream, distinct from any serial use of the
/// master seed itself.
pub fn mix_seed(master: u64, lane: u64) -> u64 {
    let mut z = master
        .rotate_left(17)
        .wrapping_add(lane.wrapping_mul(0xa076_1d64_78bd_642f))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic split of a trace budget into fixed-size shards.
///
/// The shard layout depends only on `(total, shard_size)` — never on
/// how many workers execute it — so the same plan replayed on any
/// thread count produces the same shards in the same index order.
/// Shards are the unit of determinism; workers are the unit of
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Total units of work (traces) in the campaign.
    pub total: u64,
    /// Units per shard; the final shard takes the remainder.
    pub shard_size: u64,
}

/// One shard of a [`ShardPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index, `0..plan.shard_count()`.
    pub index: usize,
    /// Global index of the shard's first unit.
    pub start: u64,
    /// Units assigned to this shard.
    pub traces: u64,
}

impl ShardPlan {
    /// A plan covering `total` units in shards of `shard_size`
    /// (clamped to at least 1).
    pub fn new(total: u64, shard_size: u64) -> Self {
        ShardPlan {
            total,
            shard_size: shard_size.max(1),
        }
    }

    /// A plan that splits `total` units into at most `parts` shards of
    /// near-equal size: the shard size rounds *up*
    /// (`total.div_ceil(parts)`), so the split is exact — shards
    /// partition `total`, no shard is empty, and the plan never grows
    /// an extra degenerately small trailing shard the way a
    /// floor-divided size does (e.g. 1000 into 16 parts: floor gives
    /// 17 shards with an 8-trace tail; this gives 16 shards of 63/55).
    /// With `total < parts` the plan degenerates to one-unit shards.
    pub fn balanced(total: u64, parts: u64) -> Self {
        ShardPlan::new(total, total.div_ceil(parts.max(1)))
    }

    /// Number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        usize::try_from(self.total.div_ceil(self.shard_size)).expect("shard count fits usize")
    }

    /// The shards, in index order.
    pub fn shards(&self) -> Vec<ShardSpec> {
        (0..self.shard_count())
            .map(|index| {
                let start = index as u64 * self.shard_size;
                ShardSpec {
                    index,
                    start,
                    traces: self.shard_size.min(self.total - start),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn balanced_split_is_exact_over_edge_counts() {
        for total in [0u64, 1, 2, 15, 16, 17, 31, 100, 999, 1000, 1001] {
            for parts in [1u64, 2, 3, 15, 16, 17, 64] {
                let plan = ShardPlan::balanced(total, parts);
                let shards = plan.shards();
                assert_eq!(
                    shards.iter().map(|s| s.traces).sum::<u64>(),
                    total,
                    "partition of {total} into {parts}"
                );
                assert!(
                    shards.iter().all(|s| s.traces > 0),
                    "no empty shard for {total}/{parts}"
                );
                assert!(
                    shards.len() as u64 <= parts.max(1),
                    "{total} into {parts} made {} shards",
                    shards.len()
                );
                // Contiguous, ordered, gap-free coverage.
                let mut next = 0u64;
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.index, i);
                    assert_eq!(s.start, next);
                    next += s.traces;
                }
                // Near-equal: only the last shard may be smaller, and
                // every other shard has the same size.
                if let Some((last, rest)) = shards.split_last() {
                    assert!(rest.iter().all(|s| s.traces == plan.shard_size));
                    assert!(last.traces <= plan.shard_size);
                }
            }
        }
        assert_eq!(
            ShardPlan::balanced(10, 0).shards().len(),
            1,
            "parts=0 clamps"
        );
    }

    #[test]
    fn par_map_preserves_order_at_any_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [0, 1, 2, 3, 8, 64] {
            assert_eq!(par_map(workers, &items, |x| x * 3 + 1), expect);
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        let out = par_map_indexed(7, 100, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(4, 1, |i| i + 9), vec![9]);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let caught = std::panic::catch_unwind(|| {
            par_map_indexed(4, 32, |i| {
                if i == 13 {
                    panic!("unlucky shard");
                }
                i
            })
        })
        .expect_err("must panic");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("wrong payload type");
        assert!(msg.contains("unlucky shard"), "payload was {msg:?}");
    }

    #[test]
    fn shard_plan_partitions_exactly() {
        for (total, size) in [
            (0u64, 5u64),
            (1, 5),
            (5, 5),
            (6, 5),
            (500, 7),
            (500, 500),
            (3, 1),
        ] {
            let plan = ShardPlan::new(total, size);
            let shards = plan.shards();
            assert_eq!(shards.len(), plan.shard_count());
            let mut next = 0u64;
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.index, i);
                assert_eq!(s.start, next);
                assert!(s.traces >= 1 || total == 0);
                assert!(s.traces <= size);
                next += s.traces;
            }
            assert_eq!(next, total, "shards must cover the budget exactly");
        }
    }

    #[test]
    fn shard_size_zero_is_clamped() {
        let plan = ShardPlan::new(10, 0);
        assert_eq!(plan.shard_size, 1);
        assert_eq!(plan.shard_count(), 10);
    }

    #[test]
    fn mix_seed_is_pure_and_spreads() {
        assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
        let lanes: Vec<u64> = (0..64).map(|l| mix_seed(42, l)).collect();
        let mut uniq = lanes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), lanes.len(), "lane seeds must not collide");
        assert_ne!(mix_seed(42, 0), 42, "lane 0 is a fresh stream");
        assert_ne!(mix_seed(1, 3), mix_seed(2, 3), "master seed matters");
    }

    #[test]
    fn resolve_workers_zero_means_machine() {
        assert_eq!(resolve_workers(0), available_workers());
        assert_eq!(resolve_workers(5), 5);
        assert!(available_workers() >= 1);
    }
}
