//! Online anomaly detector for alternating-stimulus measurement
//! activity.
//!
//! The attack's capture loop is not electrically silent: to read a
//! voltage through benign logic it must *toggle* that logic, and the
//! paper's reset/measure stimulus pair alternates every fabric tick.
//! That puts a tone at the tick Nyquist frequency into the region's
//! supply current — a signature no constant-activity tenant produces
//! (benign datapaths like the fabric's AES core switch with period-3
//! structure whose alternating sum cancels over any window divisible
//! by 6).
//!
//! The detector therefore folds a defender TDC's per-tick thermometer
//! readouts with alternating signs over a fixed even-length window:
//!
//! ```text
//! score = | Σ_t (-1)^t · depth_t | / (N / 2)      (units: taps)
//! ```
//!
//! For i.i.d. sensor noise of σ taps the score's noise floor is
//! `σ·√(2/N)·√(π/2)` ≈ a few millitaps at N = 8192, while an attacker
//! alternating its stimulus current by a few milliamps shows up at tens
//! of millitaps — enough headroom for a threshold with hysteresis.

use serde::{Deserialize, Serialize};

/// Detector window geometry and alarm threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Window length in fabric ticks. Must be even (the alternating sum
    /// is only unbiased over sign-balanced windows); a multiple of 6
    /// additionally cancels period-3 benign activity exactly.
    pub window_ticks: u32,
    /// Score at or above which a window raises the alarm, taps.
    pub alarm_threshold: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            window_ticks: 8190, // even and divisible by 6
            alarm_threshold: 0.02,
        }
    }
}

/// Streaming alternating-sum detector over a defender sensor's readouts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlternationDetector {
    config: DetectorConfig,
    acc: f64,
    filled: u32,
    sign: f64,
    last_score: f64,
    max_score: f64,
    windows: u64,
    alarm_windows: u64,
    alarm_events: u64,
    alarmed: bool,
}

impl AlternationDetector {
    /// Creates the detector. Panics if the window length is zero or odd.
    pub fn new(config: DetectorConfig) -> Self {
        assert!(
            config.window_ticks > 0 && config.window_ticks % 2 == 0,
            "detector window must be a positive even tick count, got {}",
            config.window_ticks
        );
        AlternationDetector {
            config,
            acc: 0.0,
            filled: 0,
            sign: 1.0,
            last_score: 0.0,
            max_score: 0.0,
            windows: 0,
            alarm_windows: 0,
            alarm_events: 0,
            alarmed: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Feeds one per-tick sensor readout (thermometer depth in taps).
    /// Returns the window score when this readout completes a window.
    pub fn observe(&mut self, depth: u32) -> Option<f64> {
        self.acc += self.sign * f64::from(depth);
        self.sign = -self.sign;
        self.filled += 1;
        if self.filled < self.config.window_ticks {
            return None;
        }
        let score = self.acc.abs() / f64::from(self.config.window_ticks / 2);
        self.acc = 0.0;
        self.filled = 0;
        self.sign = 1.0;
        self.last_score = score;
        self.max_score = self.max_score.max(score);
        self.windows += 1;
        let alarm = score >= self.config.alarm_threshold;
        if alarm {
            self.alarm_windows += 1;
            if !self.alarmed {
                self.alarm_events += 1;
            }
        }
        self.alarmed = alarm;
        Some(score)
    }

    /// Score of the most recently completed window, taps.
    pub fn last_score(&self) -> f64 {
        self.last_score
    }

    /// Largest window score seen so far, taps.
    pub fn max_score(&self) -> f64 {
        self.max_score
    }

    /// Completed windows.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Windows that scored at or above the alarm threshold.
    pub fn alarm_windows(&self) -> u64 {
        self.alarm_windows
    }

    /// Rising edges of the alarm state (distinct detections).
    pub fn alarm_events(&self) -> u64 {
        self.alarm_events
    }

    /// Whether the most recent window raised the alarm.
    pub fn alarmed(&self) -> bool {
        self.alarmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(window: u32, threshold: f64) -> AlternationDetector {
        AlternationDetector::new(DetectorConfig {
            window_ticks: window,
            alarm_threshold: threshold,
        })
    }

    #[test]
    fn constant_input_scores_zero() {
        let mut d = detector(12, 0.5);
        let mut score = None;
        for _ in 0..12 {
            score = d.observe(31).or(score);
        }
        assert_eq!(score, Some(0.0));
        assert_eq!(d.windows(), 1);
        assert_eq!(d.alarm_windows(), 0);
    }

    #[test]
    fn period_three_activity_cancels() {
        // AES-like period-3 tick pattern: windows divisible by 6 see a
        // zero alternating sum regardless of the pattern's amplitude.
        let mut d = detector(18, 0.01);
        let pattern = [40u32, 12, 25];
        for t in 0..18 {
            d.observe(pattern[t % 3]);
        }
        assert_eq!(d.windows(), 1);
        assert!(d.last_score().abs() < 1e-12, "score = {}", d.last_score());
        assert!(!d.alarmed());
    }

    #[test]
    fn alternating_input_scores_full_swing() {
        // Depth toggling 30↔32 every tick is a 1-tap alternating
        // amplitude around the mean: |Σ ±(31±1)| / (N/2) = 2.
        let mut d = detector(10, 0.5);
        let mut score = None;
        for t in 0..10 {
            score = d.observe(if t % 2 == 0 { 32 } else { 30 }).or(score);
        }
        assert_eq!(score, Some(2.0));
        assert!(d.alarmed());
        assert_eq!(d.alarm_windows(), 1);
        assert_eq!(d.alarm_events(), 1);
    }

    #[test]
    fn alarm_events_count_rising_edges() {
        let mut d = detector(4, 0.5);
        let alternating = [32u32, 30, 32, 30];
        let quiet = [31u32; 4];
        for w in [alternating, quiet, alternating, alternating, quiet] {
            for x in w {
                d.observe(x);
            }
        }
        assert_eq!(d.windows(), 5);
        assert_eq!(d.alarm_windows(), 3);
        // Two distinct detections: windows 1 and 3–4.
        assert_eq!(d.alarm_events(), 2);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_window_rejected() {
        detector(7, 0.5);
    }

    #[test]
    fn partial_window_reports_nothing() {
        let mut d = detector(100, 0.5);
        for t in 0..99 {
            assert_eq!(d.observe(t % 7), None);
        }
        assert_eq!(d.windows(), 0);
        assert_eq!(d.last_score(), 0.0);
    }
}
