//! Runtime countermeasures for multi-tenant FPGA power side channels.
//!
//! The paper's stealthy benign-logic sensor defeats *structural*
//! bitstream checking by construction — every netlist it ships is an
//! ordinary combinational circuit. The defender's remaining options are
//! therefore *runtime* ones, and this crate models the four shapes the
//! countermeasure literature proposes:
//!
//! * [`FenceSpec`] — an **active fence** noise injector (Krautter et
//!   al.): a defender-owned current source on the shared PDN that masks
//!   the victim's supply signature. Three modes: a constant draw (known
//!   to be nearly useless — Pearson correlation is offset-invariant), a
//!   PRNG-modulated draw, and a SHIELD-style *adaptive* draw that stays
//!   in a low-power idle state until an on-chip sensor readout feedback
//!   loop detects measurement activity.
//! * [`LdoConfig`] — **supply regulation**: a per-region LDO/regulator
//!   stage that attenuates cross-region droop coupling, the electrical
//!   isolation knob cloud providers can buy with power-delivery design.
//! * [`ClockJitterConfig`] — **temporal randomization** of the victim
//!   tenant's clock: a random per-encryption phase offset that smears
//!   the leakage across capture sample positions.
//! * [`DetectorConfig`] / [`AlternationDetector`] — an **online anomaly
//!   detector** watching a defender-owned sensor region for the
//!   attacker's tell: the alternating reset/measure stimulus pair
//!   drives the sensing tenant's current at the tick rate, a Nyquist
//!   tone no benign constant-activity tenant produces.
//!
//! [`DefenseConfig`] bundles any subset of these; [`DefenseRuntime`] is
//! the per-fabric state machine the co-simulation steps once per tick.
//! Everything is seeded and deterministic: the same configuration
//! reproduces the same injected-current and detector trajectories
//! bit-for-bit, which is what lets defended capture campaigns shard
//! across workers without changing their results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod detector;
mod runtime;

pub use config::{
    AdaptivePolicy, ClockJitterConfig, DefenseConfig, FenceMode, FenceSpec, LdoConfig,
};
pub use detector::{AlternationDetector, DetectorConfig};
pub use runtime::{DefenseRuntime, DefenseTelemetry};
