//! Per-fabric defense state machine.

use serde::{Deserialize, Serialize};
use slm_pdn::noise::Rng64;
use slm_sensors::TdcSensor;

use crate::config::{DefenseConfig, FenceMode};
use crate::detector::AlternationDetector;

/// Counters and extrema accumulated by a [`DefenseRuntime`] over a
/// capture — the defense-side analogue of `PdnTelemetry`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DefenseTelemetry {
    /// Fabric ticks the runtime observed.
    pub ticks: u64,
    /// Largest instantaneous injected fence current, amperes.
    pub injected_max_a: f64,
    /// Sum of per-tick injected currents (divide by `ticks` for the
    /// mean draw — the defense's power bill).
    pub injected_sum_a: f64,
    /// Detector windows completed.
    pub windows: u64,
    /// Windows scoring at or above the alarm threshold.
    pub alarm_windows: u64,
    /// Distinct alarm events (rising edges).
    pub alarm_events: u64,
    /// Most recent window score, taps.
    pub last_score: f64,
    /// Largest window score, taps.
    pub max_score: f64,
    /// Ticks spent with the adaptive fence armed at full power.
    pub armed_ticks: u64,
    /// Extra victim lead-in cycles injected by clock jitter, total.
    pub jitter_cycles: u64,
}

impl DefenseTelemetry {
    /// Mean injected fence current over the run, amperes.
    pub fn injected_mean_a(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.injected_sum_a / self.ticks as f64
        }
    }
}

/// Live defense instance owned by a fabric: the defender's TDC, the
/// detector it feeds, the fence modulation stream, and the jitter
/// stream.
///
/// The co-simulation drives it with two calls per fabric tick:
/// [`next_injection_a`] *before* the PDN step (the fence current that
/// loads the rail during this tick) and [`observe_tick`] *after* it
/// (the defender's sensor sees the settled rail voltage, updating the
/// detector and — for the adaptive fence — the arming state used by the
/// *next* tick's injection). The one-tick feedback latency is the
/// physical sensor→controller loop delay.
///
/// [`next_injection_a`]: DefenseRuntime::next_injection_a
/// [`observe_tick`]: DefenseRuntime::observe_tick
#[derive(Debug, Clone)]
pub struct DefenseRuntime {
    config: DefenseConfig,
    sensor: TdcSensor,
    fence_rng: Rng64,
    jitter_rng: Rng64,
    detector: AlternationDetector,
    armed: bool,
    telemetry: DefenseTelemetry,
}

impl DefenseRuntime {
    /// Instantiates the runtime from its configuration. The defender's
    /// sensor-noise, fence and jitter streams are independent forks of
    /// `config.seed`, so they never perturb the fabric's own streams.
    pub fn new(config: &DefenseConfig) -> Self {
        let root = Rng64::new(config.seed);
        let mut sensor_config = config.sensor;
        sensor_config.seed = root.fork(0x5e).next_u64();
        DefenseRuntime {
            sensor: TdcSensor::new(sensor_config),
            fence_rng: root.fork(0xfe),
            jitter_rng: root.fork(0xc1),
            detector: AlternationDetector::new(config.detector),
            armed: false,
            telemetry: DefenseTelemetry::default(),
            config: config.clone(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DefenseConfig {
        &self.config
    }

    /// Draws the fence current for the upcoming tick, amperes. Consumes
    /// exactly one modulation draw per tick when a PRNG-modulated fence
    /// is deployed (none for constant or absent fences), keeping the
    /// stream position a pure function of tick count.
    pub fn next_injection_a(&mut self) -> f64 {
        self.telemetry.ticks += 1;
        if self.armed {
            self.telemetry.armed_ticks += 1;
        }
        let amps = match self.config.fence {
            None => 0.0,
            Some(fence) => match fence.mode {
                FenceMode::Constant => fence.peak_current_a,
                FenceMode::Prng => self.fence_rng.uniform() * fence.peak_current_a,
                FenceMode::Adaptive(policy) => {
                    let scale = if self.armed {
                        1.0
                    } else {
                        policy.idle_fraction
                    };
                    self.fence_rng.uniform() * fence.peak_current_a * scale
                }
            },
        };
        self.telemetry.injected_max_a = self.telemetry.injected_max_a.max(amps);
        self.telemetry.injected_sum_a += amps;
        amps
    }

    /// Feeds the defender's sensor with the victim-region rail voltage
    /// after this tick's PDN step. Updates the detector and, at window
    /// boundaries, the adaptive fence's arming hysteresis.
    pub fn observe_tick(&mut self, victim_v: f64) {
        let depth = self.sensor.sample(victim_v);
        if let Some(score) = self.detector.observe(depth) {
            self.telemetry.windows = self.detector.windows();
            self.telemetry.alarm_windows = self.detector.alarm_windows();
            self.telemetry.alarm_events = self.detector.alarm_events();
            self.telemetry.last_score = score;
            self.telemetry.max_score = self.detector.max_score();
            if let Some(fence) = self.config.fence {
                if let FenceMode::Adaptive(policy) = fence.mode {
                    if self.armed {
                        if score <= policy.release_score {
                            self.armed = false;
                        }
                    } else if score >= policy.trigger_score {
                        self.armed = true;
                    }
                }
            }
        }
    }

    /// Draws the extra victim lead-in for one encryption, AES cycles.
    /// Zero (and no stream consumption) when clock jitter is not
    /// deployed.
    pub fn draw_jitter_cycles(&mut self) -> u32 {
        match self.config.clock_jitter {
            None => 0,
            Some(jitter) => {
                let extra = self.jitter_rng.below(u64::from(jitter.max_cycles) + 1) as u32;
                self.telemetry.jitter_cycles += u64::from(extra);
                extra
            }
        }
    }

    /// Whether the adaptive fence is currently armed at full power.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// The detector (read access for monitoring planes).
    pub fn detector(&self) -> &AlternationDetector {
        &self.detector
    }

    /// Telemetry accumulated so far.
    pub fn telemetry(&self) -> &DefenseTelemetry {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdaptivePolicy, ClockJitterConfig, DefenseConfig, FenceSpec};
    use crate::detector::DetectorConfig;

    fn base() -> DefenseConfig {
        DefenseConfig {
            detector: DetectorConfig {
                window_ticks: 60,
                alarm_threshold: 0.5,
            },
            ..DefenseConfig::default()
        }
    }

    #[test]
    fn no_fence_injects_nothing() {
        let mut rt = DefenseRuntime::new(&base());
        for _ in 0..100 {
            assert_eq!(rt.next_injection_a(), 0.0);
            rt.observe_tick(1.0);
        }
        assert_eq!(rt.telemetry().ticks, 100);
        assert_eq!(rt.telemetry().injected_max_a, 0.0);
        assert_eq!(rt.telemetry().injected_mean_a(), 0.0);
    }

    #[test]
    fn constant_fence_injects_peak_every_tick() {
        let mut cfg = base();
        cfg.fence = Some(FenceSpec::constant(0.8));
        let mut rt = DefenseRuntime::new(&cfg);
        for _ in 0..10 {
            assert_eq!(rt.next_injection_a(), 0.8);
        }
        assert!((rt.telemetry().injected_mean_a() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn prng_fence_spans_range_and_is_seeded() {
        let mut cfg = base();
        cfg.fence = Some(FenceSpec::prng(1.2));
        let draws: Vec<f64> = {
            let mut rt = DefenseRuntime::new(&cfg);
            (0..1000).map(|_| rt.next_injection_a()).collect()
        };
        assert!(draws.iter().all(|&a| (0.0..1.2).contains(&a)));
        let spread = draws.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - draws.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.8, "modulation too narrow: {spread}");
        // Same seed → identical stream.
        let mut rt2 = DefenseRuntime::new(&cfg);
        let again: Vec<f64> = (0..1000).map(|_| rt2.next_injection_a()).collect();
        assert_eq!(draws, again);
    }

    #[test]
    fn adaptive_fence_arms_on_alternation_and_releases_when_quiet() {
        let mut cfg = base();
        cfg.fence = Some(FenceSpec {
            mode: FenceMode::Adaptive(AdaptivePolicy {
                trigger_score: 0.5,
                release_score: 0.2,
                idle_fraction: 0.0,
            }),
            peak_current_a: 1.0,
        });
        // Noise-free defender sensor so window scores are exact.
        cfg.sensor.jitter_ps = 0.0;
        let mut rt = DefenseRuntime::new(&cfg);

        // Quiet rail: no arming, idle fence draws nothing.
        for _ in 0..60 {
            assert_eq!(rt.next_injection_a(), 0.0);
            rt.observe_tick(1.0);
        }
        assert!(!rt.armed());

        // Rail alternating by ±4 mV (≈ ±2 taps) every tick: the window
        // score jumps past the trigger and the fence arms.
        for t in 0..60 {
            rt.next_injection_a();
            rt.observe_tick(if t % 2 == 0 { 1.004 } else { 0.996 });
        }
        assert!(rt.armed(), "score {}", rt.detector().last_score());
        // Armed fence now actually injects.
        let armed_draws: Vec<f64> = (0..20).map(|_| rt.next_injection_a()).collect();
        assert!(armed_draws.iter().any(|&a| a > 0.1));
        assert!(rt.telemetry().armed_ticks > 0);

        // Quiet again: the hysteresis releases at the next boundary.
        for _ in 0..60 {
            rt.observe_tick(1.0);
        }
        assert!(!rt.armed());
        assert!(rt.telemetry().alarm_events >= 1);
    }

    #[test]
    fn jitter_draws_bounded_and_seeded() {
        let mut cfg = base();
        cfg.clock_jitter = Some(ClockJitterConfig { max_cycles: 5 });
        let mut rt = DefenseRuntime::new(&cfg);
        let draws: Vec<u32> = (0..500).map(|_| rt.draw_jitter_cycles()).collect();
        assert!(draws.iter().all(|&c| c <= 5));
        assert!(draws.contains(&0) && draws.contains(&5));
        assert_eq!(
            rt.telemetry().jitter_cycles,
            draws.iter().map(|&c| u64::from(c)).sum::<u64>()
        );
        let mut rt2 = DefenseRuntime::new(&cfg);
        let again: Vec<u32> = (0..500).map(|_| rt2.draw_jitter_cycles()).collect();
        assert_eq!(draws, again);
    }

    #[test]
    fn disabled_jitter_draws_zero_without_consuming_stream() {
        let mut rt = DefenseRuntime::new(&base());
        for _ in 0..10 {
            assert_eq!(rt.draw_jitter_cycles(), 0);
        }
        assert_eq!(rt.telemetry().jitter_cycles, 0);
    }
}
