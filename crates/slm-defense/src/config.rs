//! Countermeasure configuration types.

use serde::{Deserialize, Serialize};
use slm_sensors::TdcConfig;

use crate::detector::DetectorConfig;

/// How an active fence modulates its injected current.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FenceMode {
    /// A constant current sink at the configured peak. Included as the
    /// control arm of the matrix: Pearson correlation is invariant to a
    /// constant offset, so this mode should buy essentially nothing —
    /// the result the countermeasure literature reports for naive
    /// "burn power" fences.
    Constant,
    /// A PRNG-modulated sink: a fresh uniform draw in
    /// `[0, peak_current_a)` every fabric tick. The injected waveform is
    /// wideband and uncorrelated with the victim, so it lands in the
    /// attacker's measurement as additive noise.
    Prng,
    /// SHIELD-style adaptive fence: idles at `idle_fraction` of peak
    /// until the defender's own sensor feedback loop scores the region
    /// as under measurement, then runs the PRNG sink at full peak until
    /// the score decays below the release point.
    Adaptive(AdaptivePolicy),
}

/// Hysteresis policy of the adaptive fence's feedback loop.
///
/// Scores come from the same [`AlternationDetector`] windows the alarm
/// path uses (units: taps of alternating amplitude seen by the defender
/// TDC). `trigger_score` should sit above the sensor noise floor and
/// `release_score` below `trigger_score` so the fence does not chatter.
///
/// [`AlternationDetector`]: crate::AlternationDetector
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePolicy {
    /// Window score at or above which the fence arms.
    pub trigger_score: f64,
    /// Window score at or below which an armed fence stands down.
    pub release_score: f64,
    /// Fraction of `peak_current_a` the fence draws while disarmed.
    pub idle_fraction: f64,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            trigger_score: 0.02,
            release_score: 0.01,
            idle_fraction: 0.1,
        }
    }
}

/// An active-fence noise injector: a defender-owned current source in
/// the victim's PDN region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FenceSpec {
    /// Modulation scheme.
    pub mode: FenceMode,
    /// Peak injected current, amperes.
    pub peak_current_a: f64,
}

impl FenceSpec {
    /// A PRNG fence at the given peak current.
    pub fn prng(peak_current_a: f64) -> Self {
        FenceSpec {
            mode: FenceMode::Prng,
            peak_current_a,
        }
    }

    /// A constant fence at the given current.
    pub fn constant(current_a: f64) -> Self {
        FenceSpec {
            mode: FenceMode::Constant,
            peak_current_a: current_a,
        }
    }

    /// An adaptive fence with the default hysteresis policy.
    pub fn adaptive(peak_current_a: f64) -> Self {
        FenceSpec {
            mode: FenceMode::Adaptive(AdaptivePolicy::default()),
            peak_current_a,
        }
    }
}

/// Supply-regulation (LDO) stage between regions.
///
/// A per-region regulator does not remove a tenant's own droop (the
/// regulator shares the same package inductance) but it does attenuate
/// how much of one region's current transient appears on a *neighbour's*
/// rail. Modeled as a multiplier on the off-diagonal entries of the PDN
/// coupling matrix: `residual = 1.0` is no regulation, `0.0` perfect
/// isolation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LdoConfig {
    /// Fraction of cross-region coupling that survives regulation,
    /// in `[0, 1]`.
    pub residual: f64,
}

impl LdoConfig {
    /// A regulator passing `residual` of the cross-region coupling.
    pub fn attenuating(residual: f64) -> Self {
        LdoConfig { residual }
    }
}

impl Default for LdoConfig {
    fn default() -> Self {
        LdoConfig { residual: 0.25 }
    }
}

/// Randomization of the victim tenant's clock phase.
///
/// Each encryption starts after a uniformly random extra `0..=max_cycles`
/// idle AES cycles, so the leaky last round lands on a different capture
/// sample position from trace to trace and the attacker's fixed
/// last-round window integrates misaligned leakage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockJitterConfig {
    /// Maximum extra lead-in, AES cycles (inclusive).
    pub max_cycles: u32,
}

impl Default for ClockJitterConfig {
    fn default() -> Self {
        ClockJitterConfig { max_cycles: 8 }
    }
}

/// Full countermeasure deployment for one fabric.
///
/// Every field except the detector is optional; an all-`None` config is
/// electrically inert (the runtime still watches for attackers). All
/// randomness derives from `seed`, independently of the fabric's own
/// streams, so enabling a defense never perturbs the attacker/victim
/// noise sequences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Active-fence injector in the victim's region, if deployed.
    pub fence: Option<FenceSpec>,
    /// Cross-region supply regulation, if deployed.
    pub ldo: Option<LdoConfig>,
    /// Victim clock-phase randomization, if deployed.
    pub clock_jitter: Option<ClockJitterConfig>,
    /// Online anomaly detector (always running — it is the feedback
    /// loop of the adaptive fence and the monitoring plane's alarm
    /// source).
    pub detector: DetectorConfig,
    /// Defender-owned TDC watching the victim region at the full fabric
    /// tick rate (twice the attacker's sample rate, so the attacker's
    /// tick-rate stimulus alternation is visible rather than aliased).
    pub sensor: TdcConfig,
    /// Master seed for the defender's private randomness (fence
    /// modulation, jitter draws, sensor noise).
    pub seed: u64,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig {
            fence: None,
            ldo: None,
            clock_jitter: None,
            detector: DetectorConfig::default(),
            sensor: TdcConfig::paper_150mhz(0xdef),
            seed: 0x00de_fe5e,
        }
    }
}

impl DefenseConfig {
    /// Detector-only deployment: no electrical countermeasure, just the
    /// monitoring plane.
    pub fn monitor_only(seed: u64) -> Self {
        DefenseConfig {
            seed,
            ..DefenseConfig::default()
        }
    }

    /// Re-mixes the defender's seed for shard `index` of a sharded
    /// campaign (keeps shard streams independent, mirroring what the
    /// fabric does for its own seeds).
    pub fn reseeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}
