//! Property-based tests for the timing substrate.

use proptest::prelude::*;
use slm_netlist::generators::{alu, array_multiplier, ripple_carry_adder, AluOp};
use slm_netlist::words;
use slm_timing::{simulate_transition, DelayModel, StaEngine, VoltageDelayLaw};

proptest! {
    // Each case builds and annotates a multi-thousand-gate netlist; keep
    // the case count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Event-driven settled values must agree with functional simulation,
    /// for arbitrary stimulus pairs: timing never changes logic at t → ∞.
    #[test]
    fn settled_values_match_functional(a in any::<u16>(), b in any::<u16>(),
                                       ra in any::<u16>(), rb in any::<u16>(),
                                       seed in any::<u64>()) {
        let nl = array_multiplier(16).unwrap();
        let ann = DelayModel { seed, ..DelayModel::default() }.annotate(&nl);
        let mut reset = words::to_bits(ra as u128, 16);
        reset.extend(words::to_bits(rb as u128, 16));
        let mut measure = words::to_bits(a as u128, 16);
        measure.extend(words::to_bits(b as u128, 16));
        let waves = simulate_transition(&ann, &reset, &measure).unwrap();
        let settled: Vec<bool> = waves.output_waves().iter().map(|w| w.final_value()).collect();
        prop_assert_eq!(settled, nl.eval(&measure).unwrap());
    }

    /// STA arrival is an upper bound on every event-sim transition time.
    #[test]
    fn sta_bounds_event_sim(a in any::<u32>(), b in any::<u32>(), op_idx in 0usize..8) {
        let nl = alu(32).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let sta = ann.sta().unwrap();
        let mut reset = vec![false; nl.inputs().len()];
        let op = AluOp::ALL[op_idx];
        reset[64] = op.opcode_bits()[0];
        reset[65] = op.opcode_bits()[1];
        reset[66] = op.opcode_bits()[2];
        let mut measure = words::to_bits(a as u128, 32);
        measure.extend(words::to_bits(b as u128, 32));
        measure.extend(op.opcode_bits());
        let waves = simulate_transition(&ann, &reset, &measure).unwrap();
        for (w, &arr) in waves.output_waves().iter().zip(sta.output_arrivals_ps()) {
            let settle_ps = w.settle_time_fs() as f64 / 1000.0;
            // allow sub-ps slack for per-hop femtosecond rounding
            prop_assert!(settle_ps <= arr + 0.05,
                "settle {settle_ps} ps exceeds STA arrival {arr} ps");
        }
    }

    /// Uniformly scaling all delays scales every transition time.
    #[test]
    fn delay_scaling_scales_waveforms(a in any::<u16>(), scale_pct in 110u32..300) {
        let n = 16;
        let nl = ripple_carry_adder(n).unwrap();
        let base = DelayModel::default().annotate(&nl);
        let mut scaled = base.clone();
        let k = scale_pct as f64 / 100.0;
        scaled.scale(k);
        let reset = vec![false; 2 * n];
        let mut measure = words::to_bits(a as u128, n);
        measure.extend(words::to_bits(1, n));
        let w1 = simulate_transition(&base, &reset, &measure).unwrap();
        let w2 = simulate_transition(&scaled, &reset, &measure).unwrap();
        for (u, v) in w1.output_waves().iter().zip(w2.output_waves()) {
            prop_assert_eq!(u.transition_count(), v.transition_count());
            for (&(t1, b1), &(t2, b2)) in u.transitions.iter().zip(&v.transitions) {
                prop_assert_eq!(b1, b2);
                let expect = (t1 as f64 * k).round();
                // per-event rounding: each hop rounds once, path length < 200
                prop_assert!((t2 as f64 - expect).abs() < 300.0 * 1000.0 * 0.002 + 200.0,
                    "t1={t1} t2={t2} k={k}");
            }
        }
    }

    /// The voltage law is consistent: scale(voltage_for_scale(s)) == s.
    #[test]
    fn voltage_law_inverse(s in 0.5f64..4.0) {
        let law = VoltageDelayLaw::default();
        prop_assert!((law.scale(law.voltage_for_scale(s)) - s).abs() < 1e-9);
    }

    /// Sampling earlier than every transition yields the initial value;
    /// sampling after the settle time yields the final value.
    #[test]
    fn sampling_extremes(a in any::<u16>(), b in any::<u16>()) {
        let nl = array_multiplier(8).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let reset = vec![false; 16];
        let mut measure = words::to_bits((a & 0xff) as u128, 8);
        measure.extend(words::to_bits((b & 0xff) as u128, 8));
        let waves = simulate_transition(&ann, &reset, &measure).unwrap();
        for w in waves.output_waves() {
            prop_assert_eq!(w.sampled_at(0), w.initial);
            prop_assert_eq!(w.value_at(u64::MAX), w.final_value());
        }
    }

    /// The incremental StaEngine's dirty-propagation invariant: after an
    /// arbitrary sequence of launch-mask flips on a random netlist under
    /// a random delay annotation, the cached per-net arrivals are
    /// bitwise identical to a full from-scratch recompute under the
    /// final mask.
    #[test]
    fn incremental_sta_matches_full_recompute(
        shape in 0usize..3,
        width in 4usize..16,
        seed in any::<u64>(),
        flips in proptest::collection::vec(any::<u32>(), 1..12),
    ) {
        let nl = match shape {
            0 => ripple_carry_adder(width).unwrap(),
            1 => array_multiplier(width.max(4)).unwrap(),
            _ => alu(width.max(8)).unwrap(),
        };
        let ann = DelayModel { seed, ..DelayModel::default() }.annotate(&nl);
        let mut engine = StaEngine::new(&ann).unwrap();
        let inputs = nl.inputs().len();
        let mut mask = vec![true; inputs];
        for flip in flips {
            // low bit = new launch value, rest picks the input to flip
            mask[(flip >> 1) as usize % inputs] = flip & 1 == 1;
            engine.set_launch(&mask);
            // Interleaved checks catch state corruption that a final-
            // state-only comparison could mask via later flips.
            let reference = engine.full_recompute(&mask);
            for (id, (got, want)) in engine.arrivals_ps().iter().zip(&reference).enumerate() {
                prop_assert_eq!(got.to_bits(), want.to_bits(),
                    "net {} diverged: incremental {} vs full {}", id, got, want);
            }
        }
    }
}
