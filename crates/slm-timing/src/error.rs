//! Error type for timing analysis.

use std::error::Error;
use std::fmt;

/// Errors produced by timing analysis and event simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimingError {
    /// The netlist contains a combinational cycle; arrival times are
    /// undefined.
    CyclicNetlist,
    /// Stimulus vector length does not match the primary input count.
    StimulusMismatch {
        /// Number of primary inputs.
        expected: usize,
        /// Number of stimulus bits supplied.
        got: usize,
    },
    /// Delay annotation does not belong to the supplied netlist.
    AnnotationMismatch,
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::CyclicNetlist => {
                write!(f, "netlist is cyclic; timing analysis requires a DAG")
            }
            TimingError::StimulusMismatch { expected, got } => {
                write!(
                    f,
                    "stimulus has {got} bits but the netlist has {expected} inputs"
                )
            }
            TimingError::AnnotationMismatch => {
                write!(f, "delay annotation does not match this netlist")
            }
        }
    }
}

impl Error for TimingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(TimingError::CyclicNetlist.to_string().contains("cyclic"));
        let e = TimingError::StimulusMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains('4'));
    }
}
