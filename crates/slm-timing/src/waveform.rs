//! Two-vector event-driven timing simulation.
//!
//! Given a stimulus pair (the sensor's "reset" vector, then its "measure"
//! vector), the simulator applies the measure vector at t = 0 to a
//! circuit settled in the reset state and records every transition each
//! net makes, with transport-delay semantics (hazard pulses propagate).
//! The per-endpoint [`Waveform`]s are the raw material of the benign
//! sensor: a capture register clocked `T` after the launch edge stores
//! `waveform.sampled_at(T / voltage_scale)`, so supply droop — which
//! stretches all delays — moves the capture point earlier in the nominal
//! waveform and flips near-critical endpoints.

use crate::delay::AnnotatedDelays;
use crate::error::TimingError;
use crate::ps_to_fs;
use serde::{Deserialize, Serialize};
use slm_netlist::GateKind;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The transition history of one net after the measure vector is applied.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Waveform {
    /// Value in the settled reset state (before t = 0).
    pub initial: bool,
    /// `(time_fs, new_value)` pairs, strictly increasing in time.
    pub transitions: Vec<(u64, bool)>,
}

impl Waveform {
    /// Value after all transitions at or before `t_fs`.
    pub fn value_at(&self, t_fs: u64) -> bool {
        match self.transitions.partition_point(|&(t, _)| t <= t_fs) {
            0 => self.initial,
            n => self.transitions[n - 1].1,
        }
    }

    /// Value a register samples on a capture edge at `t_fs`: transitions
    /// landing exactly on the edge miss setup, so only strictly earlier
    /// transitions count.
    pub fn sampled_at(&self, t_fs: u64) -> bool {
        match self.transitions.partition_point(|&(t, _)| t < t_fs) {
            0 => self.initial,
            n => self.transitions[n - 1].1,
        }
    }

    /// Fully-settled final value.
    pub fn final_value(&self) -> bool {
        self.transitions.last().map_or(self.initial, |&(_, v)| v)
    }

    /// Time of the last transition, fs (0 when the net never moves).
    pub fn settle_time_fs(&self) -> u64 {
        self.transitions.last().map_or(0, |&(t, _)| t)
    }

    /// Number of transitions (hazards included).
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the net changes value at all during the measure cycle.
    pub fn has_activity(&self) -> bool {
        !self.transitions.is_empty()
    }
}

/// Result of a two-vector simulation: one waveform per net.
#[derive(Debug, Clone)]
pub struct TransitionWaves {
    waves: Vec<Waveform>,
    output_nets: Vec<u32>,
}

impl TransitionWaves {
    /// Waveform of an arbitrary net.
    pub fn wave(&self, net: slm_netlist::NetId) -> &Waveform {
        &self.waves[net.index()]
    }

    /// Waveforms of the primary outputs, in declaration order.
    pub fn output_waves(&self) -> Vec<&Waveform> {
        self.output_nets
            .iter()
            .map(|&o| &self.waves[o as usize])
            .collect()
    }

    /// Clones the primary-output waveforms into an owned vector (the form
    /// the sensor model consumes).
    pub fn into_output_waves(self) -> Vec<Waveform> {
        let TransitionWaves { waves, output_nets } = self;
        // Move out without cloning where possible: collect indices first.
        let mut taken: Vec<Option<Waveform>> = waves.into_iter().map(Some).collect();
        output_nets
            .iter()
            .map(|&o| {
                taken[o as usize].take().unwrap_or_else(|| Waveform {
                    // An output listed twice: clone-equivalent fallback.
                    initial: false,
                    transitions: Vec::new(),
                })
            })
            .collect()
    }

    /// Total transitions across all nets — a proxy for the dynamic power
    /// the circuit itself draws during the measure cycle.
    pub fn total_transitions(&self) -> usize {
        self.waves.iter().map(Waveform::transition_count).sum()
    }

    /// The latest settle time over the primary outputs, fs.
    pub fn settle_time_fs(&self) -> u64 {
        self.output_nets
            .iter()
            .map(|&o| self.waves[o as usize].settle_time_fs())
            .max()
            .unwrap_or(0)
    }
}

/// Simulates the reset→measure transition and records every net's
/// transition waveform.
///
/// # Errors
///
/// [`TimingError::StimulusMismatch`] when vector lengths do not match the
/// input count; [`TimingError::CyclicNetlist`] for cyclic netlists.
///
/// # Example
///
/// ```
/// use slm_netlist::generators::ripple_carry_adder;
/// use slm_netlist::words;
/// use slm_timing::{simulate_transition, DelayModel};
///
/// let nl = ripple_carry_adder(16).unwrap();
/// let ann = DelayModel::default().annotate(&nl);
/// // reset: 0 + 0; measure: 0xFFFF + 1 → carry ripples through all stages
/// let mut reset = words::to_bits(0, 16);
/// reset.extend(words::to_bits(0, 16));
/// let mut measure = words::to_bits(0xFFFF, 16);
/// measure.extend(words::to_bits(1, 16));
/// let waves = simulate_transition(&ann, &reset, &measure).unwrap();
/// let outs = waves.output_waves();
/// // sum[15] settles later than sum[0]: the carry chain in action
/// assert!(outs[15].settle_time_fs() > outs[0].settle_time_fs());
/// ```
pub fn simulate_transition(
    ann: &AnnotatedDelays,
    reset: &[bool],
    measure: &[bool],
) -> Result<TransitionWaves, TimingError> {
    let nl = ann.netlist();
    if reset.len() != nl.inputs().len() || measure.len() != nl.inputs().len() {
        return Err(TimingError::StimulusMismatch {
            expected: nl.inputs().len(),
            got: if reset.len() != nl.inputs().len() {
                reset.len()
            } else {
                measure.len()
            },
        });
    }
    let initial = nl.eval_all(reset).map_err(|_| TimingError::CyclicNetlist)?;
    // CSR fanout with edge indices.
    let n = nl.len();
    let mut fanout_start = vec![0u32; n + 1];
    for g in nl.gates() {
        for &f in &g.fanin {
            fanout_start[f.index() + 1] += 1;
        }
    }
    for i in 0..n {
        fanout_start[i + 1] += fanout_start[i];
    }
    let mut fanout: Vec<(u32, u32)> = vec![(0, 0); fanout_start[n] as usize];
    let mut cursor = fanout_start.clone();
    for (gi, g) in nl.gates().iter().enumerate() {
        for (j, &f) in g.fanin.iter().enumerate() {
            fanout[cursor[f.index()] as usize] = (gi as u32, j as u32);
            cursor[f.index()] += 1;
        }
    }

    let mut values = initial.clone();
    let mut waves: Vec<Waveform> = initial
        .iter()
        .map(|&v| Waveform {
            initial: v,
            transitions: Vec::new(),
        })
        .collect();

    // Each fanin edge is a fixed-latency FIFO: the gate sees its fanin
    // value `edge_fs` later. Gates evaluate on edge arrivals against their
    // local (delayed) view and drive their net `gate_fs` later, with
    // INERTIAL delay semantics: at most one output event is in flight per
    // gate, and a re-evaluation that returns to the current output value
    // cancels the pending event — pulses shorter than the gate delay are
    // absorbed. Without this, reconvergent arrays (the C6288 multiplier)
    // amplify glitch trains combinatorially and simulation never ends;
    // with it, settled values still equal the functional evaluation
    // because the last evaluation always decides the final value.
    let gate_fs: Vec<u64> = (0..n).map(|i| ps_to_fs(ann.gate_ps(i))).collect();
    let edge_fs: Vec<Vec<u64>> = (0..n)
        .map(|i| {
            (0..nl.gates()[i].fanin.len())
                .map(|j| ps_to_fs(ann.edge_ps(i, j)))
                .collect()
        })
        .collect();
    // Local (post-edge-delay) view of each gate's fanins, settled at reset.
    let mut edge_values: Vec<Vec<bool>> = nl
        .gates()
        .iter()
        .map(|g| g.fanin.iter().map(|f| initial[f.index()]).collect())
        .collect();
    // The single pending output event per gate: (version, value). An
    // event whose version no longer matches was cancelled.
    let mut pending: Vec<Option<(u64, bool)>> = vec![None; n];
    let mut next_version = 0u64;

    /// `Arrival`: a fanin change reaches gate `gate` on edge `edge`.
    /// `Output`: gate `gate` drives its net to `value` (if `version`
    /// still matches its pending slot).
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Ev {
        Arrival { gate: u32, edge: u32, value: bool },
        Output { gate: u32, version: u64 },
    }
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut payload: Vec<Ev> = Vec::new();
    let push =
        |heap: &mut BinaryHeap<Reverse<(u64, u64)>>, payload: &mut Vec<Ev>, t: u64, ev: Ev| {
            let seq = payload.len() as u64;
            payload.push(ev);
            heap.push(Reverse((t, seq)));
        };

    for (k, &pi) in nl.inputs().iter().enumerate() {
        if measure[k] != reset[k] {
            pending[pi.index()] = Some((next_version, measure[k]));
            push(
                &mut heap,
                &mut payload,
                0,
                Ev::Output {
                    gate: pi.0,
                    version: next_version,
                },
            );
            next_version += 1;
        }
    }
    while let Some(Reverse((t, seq))) = heap.pop() {
        match payload[seq as usize] {
            Ev::Output { gate, version } => {
                let ni = gate as usize;
                let Some((v, value)) = pending[ni] else {
                    continue; // cancelled
                };
                if v != version {
                    continue; // superseded
                }
                pending[ni] = None;
                if values[ni] == value {
                    continue;
                }
                values[ni] = value;
                match waves[ni].transitions.last_mut() {
                    Some(last) if last.0 == t => last.1 = value,
                    _ => waves[ni].transitions.push((t, value)),
                }
                let s = fanout_start[ni] as usize;
                let e = fanout_start[ni + 1] as usize;
                for &(gi, j) in &fanout[s..e] {
                    push(
                        &mut heap,
                        &mut payload,
                        t + edge_fs[gi as usize][j as usize],
                        Ev::Arrival {
                            gate: gi,
                            edge: j,
                            value,
                        },
                    );
                }
            }
            Ev::Arrival { gate, edge, value } => {
                let gi = gate as usize;
                if edge_values[gi][edge as usize] == value {
                    continue;
                }
                edge_values[gi][edge as usize] = value;
                let g = &nl.gates()[gi];
                debug_assert!(g.kind != GateKind::Input);
                let out = g.kind.eval(&edge_values[gi]);
                match pending[gi] {
                    Some((_, pv)) if pv == out => {
                        // already heading to `out`; nothing new
                    }
                    Some(_) if out == values[gi] => {
                        // The in-flight pulse is narrower than the gate
                        // delay: inertial cancellation.
                        pending[gi] = None;
                    }
                    _ if out == values[gi] => {
                        // no pending event and no change
                    }
                    _ => {
                        pending[gi] = Some((next_version, out));
                        push(
                            &mut heap,
                            &mut payload,
                            t + gate_fs[gi],
                            Ev::Output {
                                gate,
                                version: next_version,
                            },
                        );
                        next_version += 1;
                    }
                }
            }
        }
    }
    // Drop no-op transition pairs introduced by same-time merging (a net
    // that returned to its previous value within one merged instant).
    for w in &mut waves {
        let mut prev = w.initial;
        w.transitions.retain(|&(_, v)| {
            let keep = v != prev;
            if keep {
                prev = v;
            }
            keep
        });
    }
    let output_nets = nl.outputs().iter().map(|&(_, o)| o.0).collect();
    Ok(TransitionWaves { waves, output_nets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;
    use slm_netlist::generators::{ripple_carry_adder, tdc_delay_line};
    use slm_netlist::{words, NetlistBuilder};

    fn flat_model() -> DelayModel {
        DelayModel {
            inv_ps: 40.0,
            simple_ps: 50.0,
            xor_ps: 60.0,
            per_fanout_ps: 0.0,
            variation_frac: 0.0,
            routing_min_ps: 100.0,
            routing_max_ps: 100.0,
            seed: 1,
        }
    }

    #[test]
    fn buffer_chain_propagates_step() {
        let nl = tdc_delay_line(5).unwrap();
        let ann = flat_model().annotate(&nl);
        let waves = simulate_transition(&ann, &[false], &[true]).unwrap();
        let outs = waves.output_waves();
        for (i, w) in outs.iter().enumerate() {
            assert_eq!(w.transition_count(), 1, "tap {i}");
            let t = w.transitions[0].0;
            assert_eq!(t, (i as u64 + 1) * 140_000, "tap {i}"); // (100+40) ps
            assert!(w.final_value());
        }
    }

    #[test]
    fn sampling_semantics() {
        let w = Waveform {
            initial: false,
            transitions: vec![(100, true), (200, false)],
        };
        assert!(!w.value_at(99));
        assert!(w.value_at(100)); // inclusive
        assert!(!w.sampled_at(100)); // strict: setup missed
        assert!(w.sampled_at(150));
        assert!(!w.sampled_at(250));
        assert!(!w.final_value());
        assert_eq!(w.settle_time_fs(), 200);
    }

    #[test]
    fn carry_chain_settle_times_increase() {
        let n = 32;
        let nl = ripple_carry_adder(n).unwrap();
        let ann = flat_model().annotate(&nl);
        let mut reset = words::to_bits(0, n);
        reset.extend(words::to_bits(0, n));
        let mut measure = words::to_bits((1u128 << n) - 1, n);
        measure.extend(words::to_bits(1, n));
        let waves = simulate_transition(&ann, &reset, &measure).unwrap();
        let outs = waves.output_waves();
        // sum bits: transient 1 then settle to 0 when the carry arrives
        let mut prev = 0;
        for (i, w) in outs.iter().enumerate().take(n).skip(1) {
            let st = w.settle_time_fs();
            assert!(st >= prev, "bit {i} settles before bit {}", i - 1);
            assert!(!w.final_value(), "sum bit {i} must settle to 0");
            prev = st;
        }
        assert!(outs[n].final_value(), "carry out is 1");
        // the paper's hazard: mid bits briefly go high before the carry
        assert!(
            outs[10].transition_count() >= 2,
            "expected a hazard on sum[10], got {:?}",
            outs[10].transitions
        );
    }

    #[test]
    fn final_values_match_functional_eval() {
        let n = 16;
        let nl = ripple_carry_adder(n).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        for (a, b) in [(0u128, 0u128), (123, 456), (0xffff, 1), (0x8421, 0x1248)] {
            let mut reset = words::to_bits(0, n);
            reset.extend(words::to_bits(0, n));
            let mut measure = words::to_bits(a, n);
            measure.extend(words::to_bits(b, n));
            let waves = simulate_transition(&ann, &reset, &measure).unwrap();
            let settled: Vec<bool> = waves
                .output_waves()
                .iter()
                .map(|w| w.final_value())
                .collect();
            assert_eq!(settled, nl.eval(&measure).unwrap(), "a={a} b={b}");
        }
    }

    #[test]
    fn no_stimulus_change_no_activity() {
        let nl = ripple_carry_adder(8).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let mut v = words::to_bits(77, 8);
        v.extend(words::to_bits(11, 8));
        let waves = simulate_transition(&ann, &v, &v).unwrap();
        assert_eq!(waves.total_transitions(), 0);
        assert_eq!(waves.settle_time_fs(), 0);
    }

    #[test]
    fn stimulus_mismatch_rejected() {
        let nl = ripple_carry_adder(8).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        assert!(matches!(
            simulate_transition(&ann, &[true], &[true]),
            Err(TimingError::StimulusMismatch { .. })
        ));
    }

    #[test]
    fn glitch_on_reconvergent_xor() {
        // y = a XOR buf(a): settles to 0 but glitches when a flips because
        // one branch is slower.
        let mut b = NetlistBuilder::new("glitch");
        let a = b.input("a");
        let d = b.buf(a);
        let d2 = b.buf(d);
        let y = b.xor2(a, d2);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let ann = flat_model().annotate(&nl);
        let waves = simulate_transition(&ann, &[false], &[true]).unwrap();
        let w = &waves.output_waves()[0];
        assert!(!w.final_value());
        assert!(w.transition_count() >= 2, "expected glitch: {w:?}");
    }

    #[test]
    fn into_output_waves_matches_refs() {
        let nl = tdc_delay_line(3).unwrap();
        let ann = flat_model().annotate(&nl);
        let waves = simulate_transition(&ann, &[false], &[true]).unwrap();
        let borrowed: Vec<Waveform> = waves.output_waves().into_iter().cloned().collect();
        let owned = waves.into_output_waves();
        assert_eq!(borrowed, owned);
    }
}
