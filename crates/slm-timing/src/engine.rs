//! A reusable static-timing engine with incremental launch-set
//! re-propagation.
//!
//! [`StaResult::compute`](crate::StaResult) walks the whole netlist on
//! every call: fine for one-shot analysis, wasteful when the same
//! annotated netlist is queried repeatedly with only a few inputs
//! changing between queries (the reset→measure stimulus pattern of the
//! benign-sensor capture loop, or an ATPG searcher sweeping stimulus
//! bits). [`StaEngine`] caches everything that does not change between
//! queries — the topological order, a CSR fanout index, and the full
//! per-net arrival state — and re-propagates arrivals only from inputs
//! whose launch state actually changed, via a worklist ordered by
//! topological position.
//!
//! # Launch-set semantics
//!
//! The engine generalizes classic STA to a *launch set*: each primary
//! input either launches a transition at `t = 0` or holds still. A held
//! input's arrival is `−∞`, so its paths drop out of every downstream
//! `max`; a net whose fanin cone contains no launching input reports
//! `−∞` ("this capture sees no transition from the stimulus change").
//! With every input launching the engine is exactly classic STA — the
//! construction pass reproduces `StaResult::compute` bit for bit, and
//! [`AnnotatedDelays::sta`] is implemented on top of it.
//!
//! # Dirty-propagation invariant
//!
//! After any sequence of [`StaEngine::set_launch`] calls, the stored
//! per-net state is **bitwise identical** to a full from-scratch
//! propagation under the current launch set. This holds because an
//! update never adjusts a value in place: a dirty gate's arrival is
//! recomputed from its fanins by the *same* fold, in the same fanin
//! order, as the full pass — so equal inputs give equal (bitwise)
//! outputs, and propagation stops exactly where values stop changing.
//! The property test `incremental_sta_matches_full_recompute` pins
//! this against the reference recompute on random netlists and random
//! launch-flip sequences.

use crate::delay::AnnotatedDelays;
use crate::error::TimingError;
use crate::sta::StaResult;
use slm_netlist::NetId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cached per-netlist timing state supporting incremental launch-set
/// updates. See the [module docs](self) for semantics.
#[derive(Debug, Clone)]
pub struct StaEngine<'a> {
    ann: &'a AnnotatedDelays,
    /// Cached topological order (borrowed from the netlist's own cache).
    order: &'a [NetId],
    /// Position of each net in `order` (worklist priority).
    topo_pos: Vec<u32>,
    /// CSR fanout index: consumers of net `i` are
    /// `fanout[fanout_start[i]..fanout_start[i + 1]]`.
    fanout_start: Vec<u32>,
    fanout: Vec<u32>,
    /// Primary-input position of net `i`, if net `i` is a primary input.
    input_pos: Vec<Option<u32>>,
    /// Current launch mask, one flag per primary input.
    launch: Vec<bool>,
    arrival: Vec<f64>,
    min_arrival: Vec<f64>,
    critical_fanin: Vec<Option<u32>>,
    /// Scratch: whether a net is already queued in the worklist.
    queued: Vec<bool>,
}

impl<'a> StaEngine<'a> {
    /// Builds the engine and runs the initial full propagation with
    /// every input launching (classic STA).
    ///
    /// # Errors
    ///
    /// [`TimingError::CyclicNetlist`] if the netlist has a combinational
    /// cycle.
    pub fn new(ann: &'a AnnotatedDelays) -> Result<Self, TimingError> {
        let nl = ann.netlist();
        let n = nl.len();
        let order = nl
            .topological_order()
            .map_err(|_| TimingError::CyclicNetlist)?;
        let mut topo_pos = vec![0u32; n];
        for (pos, &id) in order.iter().enumerate() {
            topo_pos[id.index()] = pos as u32;
        }
        // CSR fanout: count, prefix-sum, fill.
        let mut fanout_start = vec![0u32; n + 1];
        for g in nl.gates() {
            for f in &g.fanin {
                fanout_start[f.index() + 1] += 1;
            }
        }
        for i in 0..n {
            fanout_start[i + 1] += fanout_start[i];
        }
        let mut cursor = fanout_start.clone();
        let mut fanout = vec![0u32; fanout_start[n] as usize];
        for (gi, g) in nl.gates().iter().enumerate() {
            for f in &g.fanin {
                let slot = cursor[f.index()];
                fanout[slot as usize] = gi as u32;
                cursor[f.index()] += 1;
            }
        }
        let mut input_pos = vec![None; n];
        for (pos, &id) in nl.inputs().iter().enumerate() {
            input_pos[id.index()] = Some(pos as u32);
        }
        let mut engine = StaEngine {
            ann,
            order,
            topo_pos,
            fanout_start,
            fanout,
            input_pos,
            launch: vec![true; nl.inputs().len()],
            arrival: vec![0.0; n],
            min_arrival: vec![0.0; n],
            critical_fanin: vec![None; n],
            queued: vec![false; n],
        };
        // Initial full pass: identical traversal to StaResult::compute.
        for &id in engine.order {
            engine.relax(id.index());
        }
        Ok(engine)
    }

    /// The annotation the engine analyzes.
    pub fn annotation(&self) -> &AnnotatedDelays {
        self.ann
    }

    /// The current launch mask, one flag per primary input.
    pub fn launch(&self) -> &[bool] {
        &self.launch
    }

    /// Latest arrival of net `id` under the current launch set, ps
    /// (`−∞` when no launching input reaches it).
    pub fn arrival_ps(&self, id: NetId) -> f64 {
        self.arrival[id.index()]
    }

    /// Earliest arrival of net `id` under the current launch set, ps.
    pub fn min_arrival_ps(&self, id: NetId) -> f64 {
        self.min_arrival[id.index()]
    }

    /// Latest arrival per primary output under the current launch set,
    /// in declaration order.
    pub fn output_arrivals_ps(&self) -> Vec<f64> {
        self.ann
            .netlist()
            .outputs()
            .iter()
            .map(|&(_, o)| self.arrival[o.index()])
            .collect()
    }

    /// Primary-output indices (declaration order) whose voltage-derated
    /// arrival violates a clock period: `arrival × scale > period_ps`.
    ///
    /// The alpha-power-law derating of
    /// [`crate::VoltageDelayLaw::scale`] multiplies every gate and edge
    /// delay by one common factor, so endpoint arrivals scale linearly
    /// with it and the derated setup check reduces to this product —
    /// no re-timing needed. `derated_sta_matches_scaled_annotation`
    /// pins that equivalence against a full re-annotated STA pass.
    ///
    /// This is the fault-injection criterion: a PDN aggressor droops
    /// the victim rail, `scale` rises above `period / arrival`, and the
    /// endpoints returned here latch stale values at the clock edge.
    pub fn derated_violations(&self, scale: f64, period_ps: f64) -> Vec<usize> {
        self.ann
            .netlist()
            .outputs()
            .iter()
            .enumerate()
            .filter(|(_, &(_, o))| self.arrival[o.index()] * scale > period_ps)
            .map(|(i, _)| i)
            .collect()
    }

    /// Recomputes the arrival state of one gate from its fanins — the
    /// exact fold `StaResult::compute` performs, so a relax on unchanged
    /// fanin state is bitwise idempotent. Returns whether any
    /// propagating value changed.
    fn relax(&mut self, gi: usize) -> bool {
        let g = &self.ann.netlist().gates()[gi];
        let (arr, min_arr, crit) = if g.fanin.is_empty() {
            let launches = match self.input_pos[gi] {
                Some(pos) => self.launch[pos as usize],
                // Constants are delay-free sources pinned at t = 0, as
                // in the full pass.
                None => true,
            };
            if launches {
                (0.0, 0.0, None)
            } else {
                (f64::NEG_INFINITY, f64::NEG_INFINITY, None)
            }
        } else {
            let mut best = f64::NEG_INFINITY;
            let mut earliest = f64::INFINITY;
            let mut best_j = 0u32;
            for (j, &f) in g.fanin.iter().enumerate() {
                let t = self.arrival[f.index()] + self.ann.edge_ps(gi, j);
                if t > best {
                    best = t;
                    best_j = j as u32;
                }
                let e = self.min_arrival[f.index()] + self.ann.edge_ps(gi, j);
                if e < earliest {
                    earliest = e;
                }
            }
            (
                best + self.ann.gate_ps(gi),
                earliest + self.ann.gate_ps(gi),
                Some(best_j),
            )
        };
        // Bitwise change detection; arrivals are never NaN (delays are
        // finite and −∞ + finite = −∞).
        let changed = self.arrival[gi].to_bits() != arr.to_bits()
            || self.min_arrival[gi].to_bits() != min_arr.to_bits();
        self.arrival[gi] = arr;
        self.min_arrival[gi] = min_arr;
        self.critical_fanin[gi] = crit;
        changed
    }

    /// Switches the engine to a new launch set, re-propagating arrivals
    /// only from inputs whose launch state changed. Returns the number
    /// of nets whose arrival state was re-evaluated (an effort metric;
    /// `0` when the mask is unchanged).
    ///
    /// # Panics
    ///
    /// If `launch.len()` differs from the netlist's primary input count.
    pub fn set_launch(&mut self, launch: &[bool]) -> usize {
        assert_eq!(
            launch.len(),
            self.launch.len(),
            "launch mask must cover every primary input"
        );
        // Seed the worklist with the inputs that actually changed.
        let nl = self.ann.netlist();
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        for (pos, &new) in launch.iter().enumerate() {
            if self.launch[pos] != new {
                self.launch[pos] = new;
                let gi = nl.inputs()[pos].index();
                if !self.queued[gi] {
                    self.queued[gi] = true;
                    heap.push(Reverse((self.topo_pos[gi], gi as u32)));
                }
            }
        }
        let mut relaxed = 0usize;
        // Worklist in topological order: every dirty net is processed
        // after all of its dirty fanins, so one relax per net suffices.
        while let Some(Reverse((_, gi))) = heap.pop() {
            let gi = gi as usize;
            self.queued[gi] = false;
            relaxed += 1;
            if self.relax(gi) {
                let lo = self.fanout_start[gi] as usize;
                let hi = self.fanout_start[gi + 1] as usize;
                for k in lo..hi {
                    let consumer = self.fanout[k] as usize;
                    if !self.queued[consumer] {
                        self.queued[consumer] = true;
                        heap.push(Reverse((self.topo_pos[consumer], consumer as u32)));
                    }
                }
            }
        }
        relaxed
    }

    /// Reference implementation: a full from-scratch propagation under
    /// `launch`, with no incremental state. Used by the equivalence
    /// property tests; intentionally shares no mutable state with the
    /// incremental path (only the same per-gate fold).
    pub fn full_recompute(&self, launch: &[bool]) -> Vec<f64> {
        assert_eq!(launch.len(), self.launch.len());
        let nl = self.ann.netlist();
        let mut arrival = vec![0.0f64; nl.len()];
        for &id in self.order {
            let gi = id.index();
            let g = &nl.gates()[gi];
            if g.fanin.is_empty() {
                let launches = match self.input_pos[gi] {
                    Some(pos) => launch[pos as usize],
                    None => true,
                };
                arrival[gi] = if launches { 0.0 } else { f64::NEG_INFINITY };
                continue;
            }
            let mut best = f64::NEG_INFINITY;
            for (j, &f) in g.fanin.iter().enumerate() {
                let t = arrival[f.index()] + self.ann.edge_ps(gi, j);
                if t > best {
                    best = t;
                }
            }
            arrival[gi] = best + self.ann.gate_ps(gi);
        }
        arrival
    }

    /// All per-net latest arrivals under the current launch set, ps.
    pub fn arrivals_ps(&self) -> &[f64] {
        &self.arrival
    }

    /// Packages the current state as a [`StaResult`].
    ///
    /// With the all-launching mask (the state right after
    /// [`StaEngine::new`]) this is bit-identical to
    /// `AnnotatedDelays::sta`'s historical full recompute; under a
    /// partial launch set the result reports the launch-set arrivals
    /// (unreached nets at `−∞`).
    pub fn to_sta_result(&self) -> StaResult {
        let nl = self.ann.netlist();
        let output_arrivals: Vec<f64> = nl
            .outputs()
            .iter()
            .map(|&(_, o)| self.arrival[o.index()])
            .collect();
        let output_min_arrivals: Vec<f64> = nl
            .outputs()
            .iter()
            .map(|&(_, o)| self.min_arrival[o.index()])
            .collect();
        let critical_net = nl.outputs().iter().map(|&(_, o)| o).max_by(|&a, &b| {
            self.arrival[a.index()]
                .partial_cmp(&self.arrival[b.index()])
                .expect("arrival times are not NaN")
        });
        StaResult::from_parts(
            self.arrival.clone(),
            self.min_arrival.clone(),
            self.critical_fanin.clone(),
            output_arrivals,
            output_min_arrivals,
            critical_net,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayModel;
    use slm_netlist::generators::{ripple_carry_adder, tdc_delay_line};

    #[test]
    fn engine_full_launch_matches_compute_bitwise() {
        let nl = ripple_carry_adder(32).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let reference = StaResult::compute(&ann).unwrap();
        let engine = StaEngine::new(&ann).unwrap();
        let via_engine = engine.to_sta_result();
        assert_eq!(via_engine, reference);
        for id in (0..nl.len()).map(|i| NetId(i as u32)) {
            assert_eq!(
                engine.arrival_ps(id).to_bits(),
                reference.arrival_ps(id).to_bits()
            );
            assert_eq!(
                engine.min_arrival_ps(id).to_bits(),
                reference.min_arrival_ps(id).to_bits()
            );
        }
    }

    #[test]
    fn derated_sta_matches_scaled_annotation() {
        // `derated_violations` exploits linearity: uniformly derating
        // every delay by `scale` scales every endpoint arrival by
        // `scale`. Pin it against the honest path — re-annotate with
        // the scale folded into the delays and re-run full STA.
        let nl = ripple_carry_adder(32).unwrap();
        let model = DelayModel::default();
        let ann = model.annotate_for_period(&nl, 9.0, 1.0).unwrap();
        let engine = StaEngine::new(&ann).unwrap();
        let law = crate::VoltageDelayLaw::default();
        let period_ps = 10_000.0;
        for v in [1.0, 0.97, 0.95, 0.93, 0.90, 0.85] {
            let scale = law.scale(v);
            let fast = engine.derated_violations(scale, period_ps);
            let mut derated = ann.clone();
            derated.scale(scale);
            let slow_engine = StaEngine::new(&derated).unwrap();
            let slow: Vec<usize> = slow_engine
                .output_arrivals_ps()
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a > period_ps)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fast, slow, "violation sets diverge at v = {v}");
        }
        // Sanity of the physics: nominal voltage meets timing, deep
        // droop does not.
        assert!(engine
            .derated_violations(law.scale(1.0), period_ps)
            .is_empty());
        assert!(!engine
            .derated_violations(law.scale(0.85), period_ps)
            .is_empty());
    }

    #[test]
    fn held_inputs_silence_their_cone() {
        let nl = tdc_delay_line(8).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let mut engine = StaEngine::new(&ann).unwrap();
        let inputs = nl.inputs().len();
        // Nothing launches: every output is unreached.
        engine.set_launch(&vec![false; inputs]);
        assert!(engine
            .output_arrivals_ps()
            .iter()
            .all(|&a| a == f64::NEG_INFINITY));
        // Back to all-launching: state must return to classic STA.
        engine.set_launch(&vec![true; inputs]);
        let reference = StaResult::compute(&ann).unwrap();
        assert_eq!(engine.to_sta_result(), reference);
    }

    #[test]
    fn unchanged_mask_relaxes_nothing() {
        let nl = ripple_carry_adder(8).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let mut engine = StaEngine::new(&ann).unwrap();
        let mask = vec![true; nl.inputs().len()];
        assert_eq!(engine.set_launch(&mask), 0);
    }

    #[test]
    fn partial_launch_matches_reference_recompute() {
        let nl = ripple_carry_adder(16).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let mut engine = StaEngine::new(&ann).unwrap();
        let inputs = nl.inputs().len();
        // Launch only operand A's low byte.
        let mut mask = vec![false; inputs];
        for m in mask.iter_mut().take(8) {
            *m = true;
        }
        engine.set_launch(&mask);
        let reference = engine.full_recompute(&mask);
        for (a, b) in engine.arrivals_ps().iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn incremental_touches_fewer_nets_than_full_pass() {
        let nl = ripple_carry_adder(64).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let mut engine = StaEngine::new(&ann).unwrap();
        let inputs = nl.inputs().len();
        // Flipping one high-order operand bit must not walk the whole
        // carry chain's fanin cone.
        let mut mask = vec![true; inputs];
        mask[62] = false;
        let relaxed = engine.set_launch(&mask);
        assert!(relaxed > 0);
        assert!(
            relaxed < nl.len() / 4,
            "flipping one input relaxed {relaxed} of {} nets",
            nl.len()
        );
    }

    #[test]
    fn cyclic_netlist_rejected() {
        let ro = slm_netlist::generators::ring_oscillator(4).unwrap();
        let ann = DelayModel::default().annotate(&ro);
        assert!(matches!(
            StaEngine::new(&ann),
            Err(TimingError::CyclicNetlist)
        ));
    }
}
