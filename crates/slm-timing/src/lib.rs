//! Timing analysis substrate: delay annotation, voltage→delay laws,
//! static timing analysis, and two-vector event simulation.
//!
//! The attack in the reproduced paper rests on one timing fact: when a
//! circuit synthesized for 50 MHz is clocked at 300 MHz, the value a
//! register captures from a combinational endpoint depends on whether the
//! endpoint's *arrival time* — which stretches and shrinks with the core
//! supply voltage — beats the capture edge. This crate provides:
//!
//! * [`DelayModel`] / [`AnnotatedDelays`] — per-gate and per-edge delays
//!   with deterministic process variation and FPGA-style routing spread,
//! * [`VoltageDelayLaw`] — the alpha-power-law scaling of delay with
//!   supply voltage,
//! * [`StaResult`] — static timing analysis: arrival times, critical
//!   path, fmax, per-endpoint slack,
//! * [`simulate_transition`] — event-driven two-vector simulation that
//!   yields, for every net, the full transition [`Waveform`] under a
//!   reset→measure stimulus pair. Sampling those waveforms at the
//!   (voltage-scaled) capture time is how the benign-sensor model in
//!   `slm-sensors` works.
//!
//! # Example
//!
//! ```
//! use slm_netlist::generators::ripple_carry_adder;
//! use slm_timing::{DelayModel, VoltageDelayLaw};
//!
//! let nl = ripple_carry_adder(32).unwrap();
//! let delays = DelayModel::default().annotate(&nl);
//! let sta = delays.sta().unwrap();
//! // The carry chain dominates: fmax is far below a 300 MHz overclock.
//! assert!(sta.fmax_mhz() < 300.0);
//!
//! let law = VoltageDelayLaw::default();
//! // A 100 mV droop slows gates down.
//! assert!(law.scale(0.9) > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod engine;
mod error;
mod sta;
mod voltage;
mod waveform;

pub use delay::{AnnotatedDelays, DelayModel};
pub use engine::StaEngine;
pub use error::TimingError;
pub use sta::{PathSegment, StaResult};
pub use voltage::VoltageDelayLaw;
pub use waveform::{simulate_transition, TransitionWaves, Waveform};

/// Femtoseconds per picosecond; event simulation uses integer
/// femtoseconds internally for exact, platform-independent ordering.
pub const FS_PER_PS: u64 = 1_000;

/// Converts picoseconds to the internal femtosecond tick count.
pub fn ps_to_fs(ps: f64) -> u64 {
    (ps * FS_PER_PS as f64).round().max(0.0) as u64
}

/// Converts internal femtoseconds back to picoseconds.
pub fn fs_to_ps(fs: u64) -> f64 {
    fs as f64 / FS_PER_PS as f64
}
