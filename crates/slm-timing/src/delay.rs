//! Gate and interconnect delay annotation.

use crate::error::TimingError;
use crate::sta::StaResult;
use serde::{Deserialize, Serialize};
use slm_netlist::{GateKind, Netlist};

/// Parameters of the delay annotation: nominal per-kind gate delays plus
/// deterministic process variation and routing spread.
///
/// Values loosely follow a 28 nm FPGA fabric: a LUT/inverter in the tens
/// of picoseconds, with net (routing) delay of the same order or larger —
/// on real FPGAs routing dominates, which is what spreads endpoint
/// arrival times and gives a benign circuit many distinct sensitivity
/// thresholds.
///
/// All randomness is derived from `seed` with a splitmix64 hash of the
/// gate/edge index, so an annotation is a pure function of
/// `(netlist, model)` — re-annotating reproduces identical delays, the
/// simulation analogue of "the same bitstream always maps the same way".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    /// Delay of inverters and buffers, ps.
    pub inv_ps: f64,
    /// Delay of AND/NAND/OR/NOR gates, ps.
    pub simple_ps: f64,
    /// Delay of XOR/XNOR gates, ps.
    pub xor_ps: f64,
    /// Extra delay per fanout on the driving gate, ps.
    pub per_fanout_ps: f64,
    /// ±fractional process variation applied per gate (0.1 = ±10 %).
    pub variation_frac: f64,
    /// Minimum routing delay per edge, ps.
    pub routing_min_ps: f64,
    /// Maximum routing delay per edge, ps.
    pub routing_max_ps: f64,
    /// Seed for the deterministic variation/routing draw.
    pub seed: u64,
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel {
            inv_ps: 40.0,
            simple_ps: 55.0,
            xor_ps: 70.0,
            per_fanout_ps: 4.0,
            variation_frac: 0.08,
            routing_min_ps: 30.0,
            routing_max_ps: 220.0,
            seed: 0x5eed_cafe,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` from a hash of `(seed, tag)`.
fn unit(seed: u64, tag: u64) -> f64 {
    (splitmix64(seed ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15)) >> 11) as f64 / (1u64 << 53) as f64
}

impl DelayModel {
    /// Base intrinsic delay for a gate kind, before variation and load.
    pub fn base_ps(&self, kind: GateKind) -> f64 {
        match kind {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0.0,
            GateKind::Not | GateKind::Buf => self.inv_ps,
            GateKind::Xor | GateKind::Xnor => self.xor_ps,
            _ => self.simple_ps,
        }
    }

    /// Annotates every gate and fanin edge of `nl` with a concrete delay.
    pub fn annotate(&self, nl: &Netlist) -> AnnotatedDelays {
        let mut fanout = vec![0usize; nl.len()];
        for g in nl.gates() {
            for f in &g.fanin {
                fanout[f.index()] += 1;
            }
        }
        let mut gate_ps = Vec::with_capacity(nl.len());
        let mut edge_ps = Vec::with_capacity(nl.len());
        let mut edge_tag = 0x1000_0000u64;
        for (gi, g) in nl.gates().iter().enumerate() {
            let base = self.base_ps(g.kind);
            if base == 0.0 {
                // Inputs and constants are delay-free sources.
                gate_ps.push(0.0);
                edge_ps.push(Vec::new());
                continue;
            }
            let load = self.per_fanout_ps * fanout[gi] as f64;
            let var = 1.0 + self.variation_frac * (2.0 * unit(self.seed, gi as u64) - 1.0);
            gate_ps.push(((base + load) * var).max(0.0));
            let mut edges = Vec::with_capacity(g.fanin.len());
            for _ in &g.fanin {
                edge_tag += 1;
                let r = self.routing_min_ps
                    + (self.routing_max_ps - self.routing_min_ps) * unit(self.seed, edge_tag);
                edges.push(r);
            }
            edge_ps.push(edges);
        }
        AnnotatedDelays {
            netlist: nl.clone(),
            gate_ps,
            edge_ps,
        }
    }

    /// Annotates `nl`, then rescales all delays so the STA critical path
    /// equals `target_period_ns × utilization` — modelling a design
    /// "synthesized for" a given clock, as the paper's circuits were
    /// synthesized for 50 MHz.
    ///
    /// # Errors
    ///
    /// [`TimingError::CyclicNetlist`] if `nl` has a combinational cycle.
    pub fn annotate_for_period(
        &self,
        nl: &Netlist,
        target_period_ns: f64,
        utilization: f64,
    ) -> Result<AnnotatedDelays, TimingError> {
        let mut ann = self.annotate(nl);
        // One-shot query during calibration: the direct full pass skips
        // the engine's fanout-index construction.
        let sta = StaResult::compute(&ann)?;
        let crit_ps = sta.critical_ps();
        if crit_ps > 0.0 {
            let scale = target_period_ns * 1000.0 * utilization / crit_ps;
            ann.scale(scale);
        }
        Ok(ann)
    }
}

/// Concrete per-gate and per-edge delays for one netlist.
#[derive(Debug, Clone)]
pub struct AnnotatedDelays {
    pub(crate) netlist: Netlist,
    pub(crate) gate_ps: Vec<f64>,
    pub(crate) edge_ps: Vec<Vec<f64>>,
}

impl AnnotatedDelays {
    /// The annotated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Intrinsic + load delay of gate `i`, ps.
    pub fn gate_ps(&self, i: usize) -> f64 {
        self.gate_ps[i]
    }

    /// Routing delay of fanin edge `j` of gate `i`, ps.
    pub fn edge_ps(&self, i: usize, j: usize) -> f64 {
        self.edge_ps[i][j]
    }

    /// Multiplies every delay by `scale`.
    pub fn scale(&mut self, scale: f64) {
        for d in &mut self.gate_ps {
            *d *= scale;
        }
        for edges in &mut self.edge_ps {
            for d in edges {
                *d *= scale;
            }
        }
    }

    /// Runs static timing analysis over this annotation.
    ///
    /// Delegates to the cached-state [`crate::StaEngine`] with every
    /// input launching, which reproduces the historical full recompute
    /// bit for bit (pinned by `engine_full_launch_matches_compute_bitwise`).
    ///
    /// # Errors
    ///
    /// [`TimingError::CyclicNetlist`] if the netlist has a combinational
    /// cycle.
    pub fn sta(&self) -> Result<StaResult, TimingError> {
        crate::StaEngine::new(self).map(|e| e.to_sta_result())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_netlist::generators::ripple_carry_adder;
    use slm_netlist::NetlistBuilder;

    #[test]
    fn annotation_is_deterministic() {
        let nl = ripple_carry_adder(16).unwrap();
        let m = DelayModel::default();
        let a1 = m.annotate(&nl);
        let a2 = m.annotate(&nl);
        assert_eq!(a1.gate_ps, a2.gate_ps);
        assert_eq!(a1.edge_ps, a2.edge_ps);
    }

    #[test]
    fn different_seed_different_delays() {
        let nl = ripple_carry_adder(16).unwrap();
        let a1 = DelayModel::default().annotate(&nl);
        let a2 = DelayModel {
            seed: 42,
            ..DelayModel::default()
        }
        .annotate(&nl);
        assert_ne!(a1.gate_ps, a2.gate_ps);
    }

    #[test]
    fn inputs_have_zero_delay() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let ann = DelayModel::default().annotate(&nl);
        assert_eq!(ann.gate_ps(0), 0.0);
        assert!(ann.gate_ps(1) > 0.0);
    }

    #[test]
    fn variation_stays_in_band() {
        let nl = ripple_carry_adder(64).unwrap();
        let m = DelayModel::default();
        let ann = m.annotate(&nl);
        for (i, g) in nl.gates().iter().enumerate() {
            let base = m.base_ps(g.kind);
            if base == 0.0 {
                continue;
            }
            let d = ann.gate_ps(i);
            // base + up to per_fanout load, ± variation
            assert!(d > base * (1.0 - m.variation_frac) * 0.99, "gate {i}");
            assert!(
                d < (base + 10.0 * m.per_fanout_ps) * (1.0 + m.variation_frac) * 1.01,
                "gate {i}: {d}"
            );
        }
    }

    #[test]
    fn routing_in_declared_range() {
        let nl = ripple_carry_adder(32).unwrap();
        let m = DelayModel::default();
        let ann = m.annotate(&nl);
        for edges in &ann.edge_ps {
            for &e in edges {
                assert!(e >= m.routing_min_ps && e <= m.routing_max_ps);
            }
        }
    }

    #[test]
    fn calibration_hits_target_period() {
        let nl = ripple_carry_adder(64).unwrap();
        let ann = DelayModel::default()
            .annotate_for_period(&nl, 20.0, 0.9)
            .unwrap();
        let crit = ann.sta().unwrap().critical_ps();
        assert!((crit - 18_000.0).abs() < 1.0, "critical = {crit} ps");
    }

    #[test]
    fn scale_scales_everything() {
        let nl = ripple_carry_adder(8).unwrap();
        let mut ann = DelayModel::default().annotate(&nl);
        let before = ann.sta().unwrap().critical_ps();
        ann.scale(2.0);
        let after = ann.sta().unwrap().critical_ps();
        assert!((after / before - 2.0).abs() < 1e-9);
    }
}
