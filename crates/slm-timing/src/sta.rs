//! Static timing analysis: arrival times, critical path, fmax, slack.

use crate::delay::AnnotatedDelays;
use crate::error::TimingError;
use serde::{Deserialize, Serialize};
use slm_netlist::NetId;

/// One hop of a reported timing path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathSegment {
    /// The net reached by this hop.
    pub net: NetId,
    /// Cumulative arrival at this net, ps.
    pub arrival_ps: f64,
}

/// Result of static timing analysis: latest arrival per net under the
/// single-corner delay annotation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaResult {
    arrival_ps: Vec<f64>,
    min_arrival_ps: Vec<f64>,
    /// Fanin index realizing the max arrival, for path backtracking.
    critical_fanin: Vec<Option<u32>>,
    output_arrivals: Vec<f64>,
    output_min_arrivals: Vec<f64>,
    critical_net: Option<NetId>,
}

impl StaResult {
    /// Assembles a result from already-propagated per-net state — the
    /// constructor the incremental [`crate::StaEngine`] uses. Callers
    /// must supply arrays consistent with one propagation pass over the
    /// netlist; `StaResult::compute` remains the reference producer.
    pub(crate) fn from_parts(
        arrival_ps: Vec<f64>,
        min_arrival_ps: Vec<f64>,
        critical_fanin: Vec<Option<u32>>,
        output_arrivals: Vec<f64>,
        output_min_arrivals: Vec<f64>,
        critical_net: Option<NetId>,
    ) -> StaResult {
        StaResult {
            arrival_ps,
            min_arrival_ps,
            critical_fanin,
            output_arrivals,
            output_min_arrivals,
            critical_net,
        }
    }

    pub(crate) fn compute(ann: &AnnotatedDelays) -> Result<StaResult, TimingError> {
        let nl = ann.netlist();
        let order = nl
            .topological_order()
            .map_err(|_| TimingError::CyclicNetlist)?;
        let mut arrival = vec![0.0f64; nl.len()];
        let mut min_arrival = vec![0.0f64; nl.len()];
        let mut critical_fanin: Vec<Option<u32>> = vec![None; nl.len()];
        for &id in order {
            let g = nl.gate(id);
            if g.fanin.is_empty() {
                arrival[id.index()] = 0.0;
                min_arrival[id.index()] = 0.0;
                continue;
            }
            let mut best = f64::NEG_INFINITY;
            let mut earliest = f64::INFINITY;
            let mut best_j = 0u32;
            for (j, &f) in g.fanin.iter().enumerate() {
                let t = arrival[f.index()] + ann.edge_ps(id.index(), j);
                if t > best {
                    best = t;
                    best_j = j as u32;
                }
                let e = min_arrival[f.index()] + ann.edge_ps(id.index(), j);
                if e < earliest {
                    earliest = e;
                }
            }
            arrival[id.index()] = best + ann.gate_ps(id.index());
            min_arrival[id.index()] = earliest + ann.gate_ps(id.index());
            critical_fanin[id.index()] = Some(best_j);
        }
        let output_arrivals: Vec<f64> = nl
            .outputs()
            .iter()
            .map(|&(_, o)| arrival[o.index()])
            .collect();
        let output_min_arrivals: Vec<f64> = nl
            .outputs()
            .iter()
            .map(|&(_, o)| min_arrival[o.index()])
            .collect();
        let critical_net = nl.outputs().iter().map(|&(_, o)| o).max_by(|&a, &b| {
            arrival[a.index()]
                .partial_cmp(&arrival[b.index()])
                .expect("arrival times are finite")
        });
        Ok(StaResult {
            arrival_ps: arrival,
            min_arrival_ps: min_arrival,
            critical_fanin,
            output_arrivals,
            output_min_arrivals,
            critical_net,
        })
    }

    /// Latest arrival time of net `id`, ps.
    pub fn arrival_ps(&self, id: NetId) -> f64 {
        self.arrival_ps[id.index()]
    }

    /// Latest arrival per primary output, in output declaration order.
    pub fn output_arrivals_ps(&self) -> &[f64] {
        &self.output_arrivals
    }

    /// Earliest possible arrival of net `id`, ps — the fast-path bound
    /// used for hold analysis.
    pub fn min_arrival_ps(&self, id: NetId) -> f64 {
        self.min_arrival_ps[id.index()]
    }

    /// Earliest arrival per primary output, in declaration order.
    pub fn output_min_arrivals_ps(&self) -> &[f64] {
        &self.output_min_arrivals
    }

    /// Hold slack per output against a register hold requirement (ps):
    /// `min_arrival − hold`. Negative means the *next* launch edge's
    /// fastest path can corrupt the capture — for the benign sensor,
    /// endpoints whose fast paths beat the hold window cannot be used at
    /// the chosen overclock (the reset stimulus would race the capture).
    pub fn hold_slacks_ps(&self, hold_ps: f64) -> Vec<f64> {
        self.output_min_arrivals
            .iter()
            .map(|&a| a - hold_ps)
            .collect()
    }

    /// Whether every output satisfies the hold requirement.
    pub fn meets_hold(&self, hold_ps: f64) -> bool {
        self.hold_slacks_ps(hold_ps).iter().all(|&s| s >= 0.0)
    }

    /// Delay of the critical (longest) register-to-register path, ps.
    ///
    /// Measured to the primary outputs, which model register inputs in
    /// this combinational abstraction.
    pub fn critical_ps(&self) -> f64 {
        self.output_arrivals.iter().copied().fold(0.0, f64::max)
    }

    /// Maximum clock frequency implied by the critical path, MHz.
    ///
    /// Returns `f64::INFINITY` for an empty or zero-delay netlist.
    pub fn fmax_mhz(&self) -> f64 {
        let crit = self.critical_ps();
        if crit <= 0.0 {
            f64::INFINITY
        } else {
            1e6 / crit
        }
    }

    /// Slack of each primary output against a clock period (ns):
    /// `period − arrival`. Negative slack means a timing violation.
    pub fn output_slacks_ns(&self, period_ns: f64) -> Vec<f64> {
        self.output_arrivals
            .iter()
            .map(|a| period_ns - a / 1000.0)
            .collect()
    }

    /// Whether the design meets timing at `freq_mhz`.
    pub fn meets_timing(&self, freq_mhz: f64) -> bool {
        self.fmax_mhz() >= freq_mhz
    }

    /// The critical path from a primary input to the latest output, as a
    /// sequence of nets with cumulative arrivals.
    ///
    /// Empty when the netlist has no outputs.
    pub fn critical_path(&self, nl: &slm_netlist::Netlist) -> Vec<PathSegment> {
        let Some(mut net) = self.critical_net else {
            return Vec::new();
        };
        let mut rev = Vec::new();
        loop {
            rev.push(PathSegment {
                net,
                arrival_ps: self.arrival_ps(net),
            });
            match self.critical_fanin[net.index()] {
                Some(j) => net = nl.gate(net).fanin[j as usize],
                None => break,
            }
        }
        rev.reverse();
        rev
    }
}

#[cfg(test)]
mod tests {
    use crate::delay::DelayModel;
    use slm_netlist::generators::{alu, c6288, ripple_carry_adder, tdc_delay_line};
    use slm_netlist::NetlistBuilder;

    #[test]
    fn arrival_accumulates_along_chain() {
        let nl = tdc_delay_line(10).unwrap();
        let ann = DelayModel {
            variation_frac: 0.0,
            routing_min_ps: 100.0,
            routing_max_ps: 100.0,
            per_fanout_ps: 0.0,
            inv_ps: 40.0,
            ..DelayModel::default()
        }
        .annotate(&nl);
        let sta = ann.sta().unwrap();
        let arr = sta.output_arrivals_ps();
        // each stage adds 100 (edge) + 40 (buf) = 140 ps
        for (i, &a) in arr.iter().enumerate() {
            assert!((a - 140.0 * (i as f64 + 1.0)).abs() < 1e-9, "tap {i}: {a}");
        }
    }

    #[test]
    fn critical_path_is_monotone_and_ends_at_max() {
        let nl = ripple_carry_adder(32).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let sta = ann.sta().unwrap();
        let path = sta.critical_path(&nl);
        assert!(path.len() > 32, "carry chain should be long");
        for w in path.windows(2) {
            assert!(w[0].arrival_ps <= w[1].arrival_ps);
        }
        assert!((path.last().unwrap().arrival_ps - sta.critical_ps()).abs() < 1e-9);
    }

    #[test]
    fn alu192_synthesizable_at_50mhz_violates_300mhz() {
        // The paper's operating points: synthesized for 50 MHz, overclocked
        // to 300 MHz.
        let nl = alu(192).unwrap();
        let ann = DelayModel::default()
            .annotate_for_period(&nl, 20.0, 0.9)
            .unwrap();
        let sta = ann.sta().unwrap();
        assert!(sta.meets_timing(50.0));
        assert!(!sta.meets_timing(300.0));
        let slacks = sta.output_slacks_ns(1000.0 / 300.0);
        assert!(slacks.iter().any(|&s| s < 0.0), "must violate at 300 MHz");
        assert!(slacks.iter().any(|&s| s > 0.0), "short paths still pass");
    }

    #[test]
    fn c6288_fmax_in_plausible_band() {
        let nl = c6288().unwrap();
        let ann = DelayModel::default()
            .annotate_for_period(&nl, 20.0, 0.9)
            .unwrap();
        let f = ann.sta().unwrap().fmax_mhz();
        assert!(f > 50.0 && f < 60.0, "fmax = {f} MHz");
    }

    #[test]
    fn min_arrivals_bound_max() {
        let nl = ripple_carry_adder(16).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let sta = ann.sta().unwrap();
        for (min, max) in sta
            .output_min_arrivals_ps()
            .iter()
            .zip(sta.output_arrivals_ps())
        {
            assert!(min <= max, "min {min} > max {max}");
            assert!(*min > 0.0, "every output is behind at least one gate");
        }
        // sum[0] has a short fast path; sum[15]'s min path is still just
        // its local xor pair, so min arrivals stay flat while max grows.
        let mins = sta.output_min_arrivals_ps();
        let maxs = sta.output_arrivals_ps();
        assert!(maxs[15] / maxs[0] > 4.0);
        assert!(mins[15] / mins[0] < 3.0);
    }

    #[test]
    fn hold_analysis() {
        let nl = ripple_carry_adder(8).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let sta = ann.sta().unwrap();
        // every path is behind ≥1 gate + routing: tiny hold always met
        assert!(sta.meets_hold(20.0));
        // an absurd hold requirement fails
        assert!(!sta.meets_hold(1.0e6));
        let slacks = sta.hold_slacks_ps(20.0);
        assert_eq!(slacks.len(), nl.outputs().len());
        assert!(slacks.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn zero_depth_netlist() {
        let mut b = NetlistBuilder::new("wire");
        let a = b.input("a");
        b.output("y", a);
        let nl = b.finish().unwrap();
        let sta = DelayModel::default().annotate(&nl).sta().unwrap();
        assert_eq!(sta.critical_ps(), 0.0);
        assert_eq!(sta.fmax_mhz(), f64::INFINITY);
    }

    #[test]
    fn cyclic_rejected() {
        let ro = slm_netlist::generators::ring_oscillator(4).unwrap();
        let ann = DelayModel::default().annotate(&ro);
        assert!(matches!(ann.sta(), Err(crate::TimingError::CyclicNetlist)));
    }
}
