//! Supply-voltage dependence of gate delay.

use serde::{Deserialize, Serialize};

/// Alpha-power-law delay model: `d(V) = d0 · ((V0 − Vth)/(V − Vth))^α`.
///
/// This is the standard Sakurai–Newton short-channel approximation used
/// to relate propagation delay to supply voltage. A droop (V below the
/// nominal `v_nominal`) yields a scale factor above 1 (slower gates); an
/// overshoot yields a factor below 1 (faster gates) — exactly the
/// behaviour Fig. 6 of the paper shows on the TDC when the RO array
/// switches off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageDelayLaw {
    /// Nominal core voltage, volts (1.0 V for 7-series).
    pub v_nominal: f64,
    /// Effective threshold voltage, volts.
    pub v_threshold: f64,
    /// Velocity-saturation exponent (1 ≤ α ≤ 2; ~1.3 for 28 nm).
    pub alpha: f64,
}

impl Default for VoltageDelayLaw {
    fn default() -> Self {
        VoltageDelayLaw {
            v_nominal: 1.0,
            v_threshold: 0.4,
            alpha: 1.3,
        }
    }
}

impl VoltageDelayLaw {
    /// Delay scale factor at supply voltage `v` (1.0 at nominal).
    ///
    /// `v` is clamped just above threshold so the model stays finite even
    /// under unphysically deep simulated droops.
    pub fn scale(&self, v: f64) -> f64 {
        let floor = self.v_threshold + 0.05;
        let v = v.max(floor);
        ((self.v_nominal - self.v_threshold) / (v - self.v_threshold)).powf(self.alpha)
    }

    /// Delay at voltage `v` given the nominal delay `d0_ps`.
    pub fn delay_ps(&self, d0_ps: f64, v: f64) -> f64 {
        d0_ps * self.scale(v)
    }

    /// Inverse of [`VoltageDelayLaw::scale`]: the voltage that produces a
    /// given scale factor. Useful for calibrating experiments.
    pub fn voltage_for_scale(&self, scale: f64) -> f64 {
        self.v_threshold + (self.v_nominal - self.v_threshold) / scale.powf(1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_unity() {
        let law = VoltageDelayLaw::default();
        assert!((law.scale(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn droop_slows_overshoot_speeds() {
        let law = VoltageDelayLaw::default();
        assert!(law.scale(0.9) > 1.0);
        assert!(law.scale(1.1) < 1.0);
        assert!(law.scale(0.8) > law.scale(0.9));
    }

    #[test]
    fn monotone_decreasing_in_voltage() {
        let law = VoltageDelayLaw::default();
        let mut prev = f64::INFINITY;
        let mut v = 0.5;
        while v < 1.3 {
            let s = law.scale(v);
            assert!(s < prev, "scale must decrease with voltage at v={v}");
            prev = s;
            v += 0.01;
        }
    }

    #[test]
    fn clamped_near_threshold() {
        let law = VoltageDelayLaw::default();
        let s = law.scale(0.0);
        assert!(s.is_finite());
        assert_eq!(s, law.scale(law.v_threshold + 0.05));
    }

    #[test]
    fn inverse_roundtrips() {
        let law = VoltageDelayLaw::default();
        for v in [0.85, 0.95, 1.0, 1.05] {
            let s = law.scale(v);
            assert!((law.voltage_for_scale(s) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn delay_scales_linearly_with_d0() {
        let law = VoltageDelayLaw::default();
        assert!((law.delay_ps(100.0, 0.9) - 2.0 * law.delay_ps(50.0, 0.9)).abs() < 1e-9);
    }
}
