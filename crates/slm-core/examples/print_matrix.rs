//! Regenerates the README detection-matrix table:
//!
//! ```sh
//! cargo run --release -p slm-core --example print_matrix
//! ```

fn main() {
    let m = slm_core::experiments::stealth_matrix().expect("fabric builds");
    println!("{}", m.markdown_table());
}
