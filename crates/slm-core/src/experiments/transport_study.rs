//! Robustness study: byte-fault rate on the UART versus attack outcome.
//!
//! The paper's campaigns assume a clean workstation link; this study
//! quantifies what an unreliable one costs the attacker. For each fault
//! rate a TDC capture campaign runs through the resilient
//! [`CampaignDriver`] (retry, resync, quarantine) and a streaming CPA
//! consumes only the validated traces. Halfway through, the CPA
//! accumulator is serialized to bytes and resumed — every row therefore
//! exercises the checkpoint path under fire, and a row where the
//! resumed ranking diverged from the live accumulator would fail its
//! consistency check.

use serde::{Deserialize, Serialize};
use slm_cpa::store::{read_checkpoint, write_checkpoint};
use slm_cpa::{measurements_to_disclosure, CpaAttack, LastRoundModel, ProgressPoint};
use slm_fabric::{
    BenignCircuit, CampaignDriver, FabricConfig, FabricError, RemoteSession, TransportError,
    WireFaultPlan,
};
use slm_pdn::noise::Rng64;

/// Parameters of one fault-robustness sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportFaultStudy {
    /// The benign circuit sharing the fabric with the victim.
    pub circuit: BenignCircuit,
    /// Capture requests per fault rate.
    pub traces: u64,
    /// Byte-fault rates to sweep (0.0 = clean wire baseline).
    pub fault_rates: Vec<f64>,
    /// Number of evenly spaced correlation checkpoints per row.
    pub checkpoints: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Worker threads running fault-rate rows concurrently (0 =
    /// machine parallelism). Each row is a self-contained campaign —
    /// its own fabric, wire and driver, seeded only by `(seed, row)` —
    /// so the sweep's result is identical at any worker count.
    pub workers: usize,
}

impl Default for TransportFaultStudy {
    fn default() -> Self {
        TransportFaultStudy {
            circuit: BenignCircuit::DualC6288,
            traces: 3_000,
            fault_rates: vec![0.0, 1e-4, 1e-3],
            checkpoints: 8,
            seed: 0x5eed,
            workers: 1,
        }
    }
}

/// Outcome of one fault rate within a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportFaultRow {
    /// Byte-fault rate on the wire.
    pub fault_rate: f64,
    /// Capture requests issued.
    pub requested: u64,
    /// Validated traces delivered to the CPA.
    pub delivered: u64,
    /// Requests abandoned after the retry budget.
    pub abandoned: u64,
    /// Retry attempts beyond the first, summed.
    pub retries: u64,
    /// Structurally intact records quarantined by validation.
    pub quarantined: u64,
    /// Times the link scanner discarded bytes to regain frame sync.
    pub resyncs: u64,
    /// Total retry backoff charged to the wire, seconds.
    pub backoff_s: f64,
    /// Total wire time of the campaign, seconds.
    pub wire_time_s: f64,
    /// Whether the correct key byte strictly led at the end.
    pub recovered: bool,
    /// Final ranking position of the correct key byte (0 = leader).
    pub rank_of_correct: usize,
    /// Delivered traces until the correct key led for good, if it did.
    pub mtd: Option<u64>,
}

/// Outcome of a fault-robustness sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportFaultStudyResult {
    /// Ground-truth last-round key byte under attack.
    pub correct_key_byte: u8,
    /// One row per swept fault rate.
    pub rows: Vec<TransportFaultRow>,
}

/// Runs the sweep.
///
/// # Errors
///
/// Propagates fabric construction failures and non-retryable fabric
/// errors; `InvalidData`-style checkpoint corruption surfaces as a
/// transport validation error (it cannot occur with an in-memory
/// buffer and indicates a bug).
pub fn transport_fault_study(
    exp: &TransportFaultStudy,
) -> Result<TransportFaultStudyResult, FabricError> {
    let model = LastRoundModel::paper_target();
    let rates: Vec<(usize, f64)> = exp.fault_rates.iter().copied().enumerate().collect();
    // Rows are self-contained campaigns seeded only by (exp, i): the
    // worker pool changes the wall clock, never the rows.
    let rows: Vec<Result<(TransportFaultRow, u8), FabricError>> =
        slm_par::par_map(exp.workers, &rates, |&(i, rate)| {
            fault_row(exp, model, i, rate)
        });
    let mut correct_key_byte = 0u8;
    let mut out = Vec::with_capacity(rates.len());
    for row in rows {
        let (row, key_byte) = row?;
        correct_key_byte = key_byte;
        out.push(row);
    }
    Ok(TransportFaultStudyResult {
        correct_key_byte,
        rows: out,
    })
}

/// One fault rate of the sweep: a full resilient campaign on its own
/// fabric and wire.
fn fault_row(
    exp: &TransportFaultStudy,
    model: LastRoundModel,
    i: usize,
    rate: f64,
) -> Result<(TransportFaultRow, u8), FabricError> {
    let config = FabricConfig {
        benign: exp.circuit,
        seed: exp.seed,
        ..FabricConfig::default()
    };
    let session = if rate > 0.0 {
        let plan = WireFaultPlan::byte_noise(exp.seed ^ (i as u64).wrapping_mul(0x9e37), rate);
        RemoteSession::with_fault_plan(&config, vec![], plan)?
    } else {
        RemoteSession::new(&config, vec![])?
    };
    let correct_key_byte = session.fabric().aes().round_keys()[10][model.ct_byte];
    let points = session.fabric().last_round_window().len();
    let mut driver = CampaignDriver::new(session);

    let mut attack = CpaAttack::new(model, points);
    let mut rng = Rng64::new(exp.seed.wrapping_add(i as u64));
    let mut abandoned = 0u64;
    let mut malformed = 0u64;
    let mut progress: Vec<ProgressPoint> = Vec::with_capacity(exp.checkpoints);
    let snap_every = (exp.traces / exp.checkpoints.max(1) as u64).max(1);
    let mut point_buf = vec![0.0f64; points];
    for t in 1..=exp.traces {
        let mut pt = [0u8; 16];
        rng.fill_bytes(&mut pt);
        match driver.capture(pt) {
            Ok(rec) => {
                for (dst, &d) in point_buf.iter_mut().zip(&rec.tdc) {
                    *dst = f64::from(d);
                }
                // A validated record can still disagree with the
                // accumulator's geometry (a short capture that passed
                // the transport checks); quarantine it instead of
                // aborting the campaign.
                let samples = &point_buf[..rec.tdc.len().min(point_buf.len())];
                if attack.try_add_trace(&rec.ciphertext, samples).is_err() {
                    malformed += 1;
                }
            }
            Err(FabricError::Transport(TransportError::RetriesExhausted { .. })) => {
                // The resilient driver gave up on this trace; the
                // campaign proceeds without it.
                abandoned += 1;
            }
            Err(fatal) => return Err(fatal),
        }
        if t % snap_every == 0 || t == exp.traces {
            progress.push(ProgressPoint {
                traces: attack.traces(),
                peak_corr: attack.peak_correlations().to_vec(),
            });
        }
        if t == exp.traces / 2 {
            // Mid-campaign crash drill: serialize the accumulator,
            // reload it, and continue from the resumed copy.
            let mut bytes = Vec::new();
            write_checkpoint(&mut bytes, &attack.checkpoint())
                .expect("in-memory checkpoint write cannot fail");
            let resumed =
                CpaAttack::resume(read_checkpoint(&bytes[..]).expect("checkpoint must reload"))
                    .expect("checkpoint must resume");
            assert_eq!(resumed, attack, "resume diverged from live accumulator");
            attack = resumed;
        }
    }

    let stats = *driver.stats();
    let session = driver.into_session();
    let row = TransportFaultRow {
        fault_rate: rate,
        requested: stats.requested,
        delivered: stats.delivered,
        abandoned,
        retries: stats.retries,
        quarantined: stats.quarantined + malformed,
        resyncs: session.link_stats().resyncs,
        backoff_s: stats.backoff_s,
        wire_time_s: session.wire_time_s(),
        recovered: attack.traces() > 0 && attack.rank_of(correct_key_byte) == 0,
        rank_of_correct: attack.rank_of(correct_key_byte),
        mtd: measurements_to_disclosure(&progress, correct_key_byte),
    };
    Ok((row, correct_key_byte))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_wire_baseline_recovers_key() {
        let exp = TransportFaultStudy {
            traces: 3_000,
            fault_rates: vec![0.0],
            ..TransportFaultStudy::default()
        };
        let r = transport_fault_study(&exp).unwrap();
        let row = &r.rows[0];
        assert!(row.recovered, "clean-wire TDC attack must converge");
        assert_eq!(row.delivered, row.requested);
        assert_eq!(row.retries, 0);
        assert_eq!(row.abandoned, 0);
        assert_eq!(row.quarantined, 0);
        assert!(row.mtd.is_some());
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let base = TransportFaultStudy {
            traces: 300,
            fault_rates: vec![0.0, 1e-3],
            checkpoints: 2,
            seed: 5,
            ..TransportFaultStudy::default()
        };
        let serial = transport_fault_study(&base).unwrap();
        let parallel = transport_fault_study(&TransportFaultStudy { workers: 4, ..base }).unwrap();
        assert_eq!(serial, parallel, "rows must not depend on the pool");
    }

    #[test]
    fn faulty_wire_still_recovers_with_bounded_overhead() {
        let exp = TransportFaultStudy {
            traces: 3_000,
            fault_rates: vec![0.0, 1e-3],
            seed: 3,
            ..TransportFaultStudy::default()
        };
        let r = transport_fault_study(&exp).unwrap();
        let clean = &r.rows[0];
        let noisy = &r.rows[1];
        assert!(clean.recovered && noisy.recovered);
        assert!(noisy.retries > 0, "1e-3/byte must force retries");
        assert!(noisy.resyncs > 0, "1e-3/byte must force resyncs");
        // The retry loop pays in wire time, never in correctness.
        assert!(noisy.wire_time_s > clean.wire_time_s);
        assert!(noisy.delivered >= exp.traces * 9 / 10);
    }
}
