//! The detection matrix: every structural and semantic pass against
//! every zoo design, plus the strict timing column for the paper's two
//! sensors.
//!
//! This is the reproduction's analogue of the paper's structural-check
//! evasion table, extended with the semantic tier. It asserts the
//! stealth claim end to end:
//!
//! * every malicious-by-construction specimen (ring oscillators, RO
//!   grids, plain/obfuscated TDCs, the carry-chain TDC, clock misuse)
//!   is caught by at least one structural pass,
//! * the declared-clock carry sensor evades *every* structural pass
//!   and is caught only by the semantic suite (clock-taint dataflow,
//!   switching activity, observation bandwidth),
//! * the ALU(192) and dual-C6288 sensors come through every structural
//!   **and** semantic pass clean and are flagged only by the strict
//!   timing check at the 300 MHz overclock.

use serde::{Deserialize, Serialize};
use slm_checker::{
    check_timing, CheckKind, CheckReport, CheckerConfig, PassManager, Severity, TaintConfig,
};
use slm_fabric::FabricError;
use slm_netlist::generators::zoo;
use slm_timing::DelayModel;

/// The two benign-logic sensor designs that carry the timing column.
const SENSOR_DESIGNS: [&str; 2] = ["alu192", "dual_c6288"];

/// The overclock frequency the strict check must catch, MHz.
pub const OVERCLOCK_MHZ: f64 = 300.0;

/// Critical-path target the sensors are "synthesized" at, ns (matches
/// the timing audit: ~192 MHz, comfortably meeting a 50 MHz clock).
pub const SYNTH_CRITICAL_NS: f64 = 5.2;

/// One zoo design's row in the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixRow {
    /// Design name (zoo identifier).
    pub design: String,
    /// Malicious by construction?
    pub malicious: bool,
    /// Net count of the scanned netlist.
    pub nets: usize,
    /// Per-structural-pass verdict, aligned with
    /// [`StealthMatrix::structural_passes`]: `true` = that pass raised
    /// an active `Warn`-or-worse finding.
    pub flagged_by: Vec<bool>,
    /// Per-semantic-pass verdict, aligned with
    /// [`StealthMatrix::semantic_passes`].
    pub semantic_flagged_by: Vec<bool>,
    /// Strict-timing verdict at [`OVERCLOCK_MHZ`]; only populated for
    /// the benign sensor designs.
    pub timing_flagged: Option<bool>,
    /// The full scan report (witnesses, spans, details).
    pub report: CheckReport,
}

impl MatrixRow {
    /// Whether any structural pass flagged the design.
    pub fn structurally_flagged(&self) -> bool {
        self.flagged_by.iter().any(|&f| f)
    }

    /// Whether any semantic pass flagged the design.
    pub fn semantically_flagged(&self) -> bool {
        self.semantic_flagged_by.iter().any(|&f| f)
    }
}

/// The full detection matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StealthMatrix {
    /// Structural pass names, in pipeline order (matrix columns).
    pub structural_passes: Vec<String>,
    /// Semantic pass names, in pipeline order (matrix columns).
    pub semantic_passes: Vec<String>,
    /// One row per zoo design.
    pub rows: Vec<MatrixRow>,
    /// The overclock used for the timing column, MHz.
    pub overclock_mhz: f64,
}

impl StealthMatrix {
    /// The paper's stealth claim over the whole zoo:
    ///
    /// * every malicious design is flagged by at least one structural
    ///   or semantic pass,
    /// * every benign design is clean on both tiers,
    /// * at least one malicious design evades the whole structural
    ///   tier and is caught only semantically,
    /// * both benign-logic sensors are caught by the strict timing
    ///   check at the overclock.
    pub fn matrix_holds(&self) -> bool {
        let verdicts = self.rows.iter().all(|row| {
            let caught = row.structurally_flagged() || row.semantically_flagged();
            let timing_ok = row.timing_flagged.unwrap_or(true);
            caught == row.malicious && timing_ok
        });
        let semantic_gap = self
            .rows
            .iter()
            .any(|row| row.malicious && !row.structurally_flagged() && row.semantically_flagged());
        verdicts && semantic_gap
    }

    /// Renders the matrix as a Markdown table (the README artifact).
    pub fn markdown_table(&self) -> String {
        let mut out = String::from("| design | class |");
        for pass in self.structural_passes.iter().chain(&self.semantic_passes) {
            out.push_str(&format!(" {pass} |"));
        }
        out.push_str(" timing @300 MHz |\n|---|---|");
        out.push_str(&"---|".repeat(self.structural_passes.len() + self.semantic_passes.len() + 1));
        out.push('\n');
        for row in &self.rows {
            let class = if row.malicious { "malicious" } else { "benign" };
            out.push_str(&format!("| {} | {class} |", row.design));
            for &hit in row.flagged_by.iter().chain(&row.semantic_flagged_by) {
                out.push_str(if hit { " **flag** |" } else { " clean |" });
            }
            out.push_str(match row.timing_flagged {
                Some(true) => " **flag** |\n",
                Some(false) => " clean |\n",
                None => " — |\n",
            });
        }
        out
    }
}

/// Builds the detection matrix over the full generator zoo at default
/// checker thresholds, seeding each entry's taint config with its
/// contract-declared clock pins (the shell knows every tenant's pin
/// roles even when the pin names hide them).
///
/// # Errors
///
/// Propagates delay-annotation failures from the timing column.
pub fn stealth_matrix() -> Result<StealthMatrix, FabricError> {
    let pm = PassManager::full();
    let structural: Vec<String> = PassManager::structural()
        .pass_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let semantic: Vec<String> = PassManager::semantic()
        .pass_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for entry in zoo() {
        let config = CheckerConfig {
            taint: TaintConfig {
                declared_clocks: entry
                    .declared_clocks
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                ..TaintConfig::default()
            },
            ..CheckerConfig::default()
        };
        let report = pm.run(&entry.netlist, &config);
        let hit = |pass: &String| {
            report
                .active()
                .any(|f| f.pass == *pass && f.severity >= Severity::Warn)
        };
        let flagged_by: Vec<bool> = structural.iter().map(hit).collect();
        let semantic_flagged_by: Vec<bool> = semantic.iter().map(hit).collect();
        let timing_flagged = if SENSOR_DESIGNS.contains(&entry.name) {
            let ann = DelayModel::default().annotate_for_period(
                &entry.netlist,
                SYNTH_CRITICAL_NS,
                1.0,
            )?;
            Some(check_timing(&ann, OVERCLOCK_MHZ).flagged(CheckKind::TimingOverclock))
        } else {
            None
        };
        rows.push(MatrixRow {
            design: entry.name.to_string(),
            malicious: entry.malicious,
            nets: entry.netlist.len(),
            flagged_by,
            semantic_flagged_by,
            timing_flagged,
            report,
        });
    }
    Ok(StealthMatrix {
        structural_passes: structural,
        semantic_passes: semantic,
        rows,
        overclock_mhz: OVERCLOCK_MHZ,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The specimen that separates the tiers: structurally clean,
    /// caught only semantically via its contract-declared clock pin.
    const SEMANTIC_ONLY_DESIGN: &str = "carry_sensor";

    #[test]
    fn detection_matrix_reproduces_the_stealth_claim() {
        let matrix = stealth_matrix().unwrap();
        assert!(
            matrix.matrix_holds(),
            "matrix drift:\n{}",
            matrix.markdown_table()
        );
        // The two sensors: clean under every structural AND semantic
        // pass, caught only by the timing column.
        for name in SENSOR_DESIGNS {
            let row = matrix.rows.iter().find(|r| r.design == name).unwrap();
            assert!(!row.structurally_flagged(), "{name} must evade structure");
            assert!(!row.semantically_flagged(), "{name} must evade semantics");
            assert!(row.report.is_clean());
            assert_eq!(row.timing_flagged, Some(true), "{name} caught by timing");
        }
        // Each malicious family is caught by the pass built for it.
        let hit = |design: &str, pass: &str| {
            let row = matrix.rows.iter().find(|r| r.design == design).unwrap();
            matrix
                .structural_passes
                .iter()
                .position(|p| p == pass)
                .map(|col| row.flagged_by[col])
                .or_else(|| {
                    matrix
                        .semantic_passes
                        .iter()
                        .position(|p| p == pass)
                        .map(|col| row.semantic_flagged_by[col])
                })
                .unwrap()
        };
        assert!(hit("ring_oscillator", "comb-loop"));
        assert!(hit("ring_oscillator_obfuscated", "signature"));
        assert!(hit("ro_grid", "trivial-array"));
        assert!(hit("tdc_delay_line", "delay-line"));
        assert!(hit("tdc_obfuscated", "scoap-sensor"));
        assert!(hit("tdc_obfuscated", "signature"));
        assert!(
            !hit("tdc_obfuscated", "delay-line"),
            "the obfuscation defeats the naive chain matcher — that is the point"
        );
        assert!(hit("tapped_carry_chain", "signature"));
        assert!(hit("clock_as_data", "clock-as-data"));
    }

    #[test]
    fn carry_sensor_is_caught_only_semantically() {
        // The tentpole row: real adder logic with a contract-declared
        // clock on the carry-in evades all seven structural passes and
        // falls to all three semantic ones.
        let matrix = stealth_matrix().unwrap();
        let row = matrix
            .rows
            .iter()
            .find(|r| r.design == SEMANTIC_ONLY_DESIGN)
            .unwrap();
        assert!(row.malicious);
        assert!(
            !row.structurally_flagged(),
            "structural tier must miss it: {:?}",
            row.flagged_by
        );
        assert!(
            row.semantic_flagged_by.iter().all(|&f| f),
            "every semantic pass must catch it: {:?}",
            row.semantic_flagged_by
        );
        assert_eq!(row.report.max_severity(), Some(Severity::Reject));
    }

    #[test]
    fn matrix_markdown_is_complete() {
        let matrix = stealth_matrix().unwrap();
        let md = matrix.markdown_table();
        for row in &matrix.rows {
            assert!(md.contains(&row.design));
        }
        assert_eq!(md.lines().count(), matrix.rows.len() + 2);
        // one column per structural + semantic pass, plus design,
        // class and timing
        let header_cols = md.lines().next().unwrap().matches('|').count() - 1;
        assert_eq!(
            header_cols,
            matrix.structural_passes.len() + matrix.semantic_passes.len() + 3
        );
    }
}
