//! Preliminary experiments: RO and AES influence on the benign sensors
//! (paper Section V-A and the matching C6288 experiments).

use serde::{Deserialize, Serialize};
use slm_cpa::{common_mode_polarity, BitActivity, BitCensus, PostProcessor};
use slm_fabric::{
    AesActivity, BenignCircuit, FabricConfig, FabricError, MultiTenantFabric, RoSchedule,
};

/// Output of the Fig. 5 / Fig. 6 / Fig. 14 experiment: the benign
/// circuit and the TDC observed while the RO array pulses at 4 MHz.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoResponse {
    /// Endpoints that changed at least once during the run ("sensitive"
    /// bits, the paper's *bits of interest*).
    pub sensitive_bits: Vec<usize>,
    /// Per sample: how many endpoints differ from the previous sample —
    /// the "toggling bits" view of Figs. 5/14.
    pub toggle_counts: Vec<u32>,
    /// Per sample: the raw captured endpoint word (low 64 bits) — the
    /// "absolute value" view of Figs. 5/14.
    pub raw_values: Vec<u64>,
    /// Per sample: TDC thermometer depth (Fig. 6, red).
    pub tdc: Vec<u32>,
    /// Per sample: Hamming weight of the sensitive bits (Fig. 6, blue).
    pub hw_sensitive: Vec<u32>,
    /// Per sample: polarity-aligned Hamming weight of the sensitive
    /// bits — every endpoint counts a droop positively, so this series
    /// moves coherently opposite the TDC regardless of each endpoint's
    /// rise/fall direction.
    pub hw_aligned: Vec<f64>,
    /// Per sample: enabled RO count (ground truth of the stimulus).
    pub ro_enabled: Vec<usize>,
    /// Per sample: true supply voltage (simulation ground truth).
    pub voltage: Vec<f64>,
}

/// Runs the RO-influence experiment (Figs. 5, 6, 14).
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn ro_response(
    circuit: BenignCircuit,
    samples: usize,
    seed: u64,
) -> Result<RoResponse, FabricError> {
    let config = FabricConfig {
        benign: circuit,
        seed,
        ..FabricConfig::default()
    };
    let mut fabric = MultiTenantFabric::new(&config)?;
    let schedule = RoSchedule::paper_4mhz();
    let trace = fabric.run_activity(Some(&schedule), AesActivity::Idle, samples);

    let mut activity = BitActivity::new(fabric.endpoints());
    for s in &trace.benign {
        activity.add(s);
    }
    let sensitive_bits = activity.sensitive_bits();

    let invert = common_mode_polarity(&trace.benign, &sensitive_bits);
    let aligned = PostProcessor::HammingWeightAligned(invert);

    let mut toggle_counts = Vec::with_capacity(samples);
    let mut raw_values = Vec::with_capacity(samples);
    let mut hw_sensitive = Vec::with_capacity(samples);
    let mut hw_aligned = Vec::with_capacity(samples);
    for (k, s) in trace.benign.iter().enumerate() {
        toggle_counts.push(if k == 0 {
            0
        } else {
            s.toggled_since(&trace.benign[k - 1])
        });
        raw_values.push(s.bits.first().copied().unwrap_or(0));
        hw_sensitive.push(s.hamming_weight_of(&sensitive_bits));
        let subset = s.hamming_weight_of(&sensitive_bits);
        let _ = subset;
        // aligned HW over the sensitive subset
        let sub = {
            let mut bits = vec![0u64; sensitive_bits.len().div_ceil(64)];
            for (slot, &i) in sensitive_bits.iter().enumerate() {
                if s.bit(i) {
                    bits[slot / 64] |= 1 << (slot % 64);
                }
            }
            slm_sensors::SensorSample {
                bits,
                len: sensitive_bits.len(),
            }
        };
        hw_aligned.push(aligned.reduce(&sub));
    }
    Ok(RoResponse {
        sensitive_bits,
        toggle_counts,
        raw_values,
        tdc: trace.tdc,
        hw_sensitive,
        hw_aligned,
        ro_enabled: trace.ro_enabled,
        voltage: trace.voltage,
    })
}

/// The sensitive-bit census of Figs. 7 and 15.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CensusResult {
    /// Total observable endpoints.
    pub total: usize,
    /// Endpoints sensitive to RO-array fluctuations.
    pub ro_sensitive: Vec<usize>,
    /// Endpoints toggling under AES activity.
    pub aes_sensitive: Vec<usize>,
    /// AES-affected endpoints that are also RO-sensitive (the paper:
    /// 39 of 40 for the ALU; all 32 for the C6288).
    pub intersection: Vec<usize>,
    /// AES-affected endpoints that the ROs do not affect.
    pub aes_only: Vec<usize>,
    /// Endpoints unaffected by either source.
    pub unaffected: usize,
}

/// Per-endpoint variance ranking of Figs. 8 and 16.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarianceResult {
    /// `(endpoint, variance under ROs, variance under AES)` for every
    /// sensitive endpoint, in endpoint order.
    pub rows: Vec<(usize, f64, f64)>,
    /// The highest-variance endpoint under AES activity — the paper's
    /// single-bit sensor selection (bit 21 for its ALU, bit 28 for its
    /// C6288).
    pub best_aes_endpoint: Option<usize>,
    /// The highest-variance endpoint under RO activity.
    pub best_ro_endpoint: Option<usize>,
}

/// Census + variance computed from one pair of activity runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityStudy {
    /// Figs. 7/15 content.
    pub census: CensusResult,
    /// Figs. 8/16 content.
    pub variance: VarianceResult,
}

/// Runs the RO-only and AES-only activity studies (Figs. 7, 8, 15, 16).
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn activity_study(
    circuit: BenignCircuit,
    samples: usize,
    seed: u64,
) -> Result<ActivityStudy, FabricError> {
    let config = FabricConfig {
        benign: circuit,
        seed,
        ..FabricConfig::default()
    };
    let mut fabric = MultiTenantFabric::new(&config)?;

    let schedule = RoSchedule::paper_4mhz();
    let ro_trace = fabric.run_activity(Some(&schedule), AesActivity::Idle, samples);
    let mut ro_act = BitActivity::new(fabric.endpoints());
    for s in &ro_trace.benign {
        ro_act.add(s);
    }

    // Fresh fabric for the AES-only run so RO-phase PDN state does not
    // leak into the census.
    let mut fabric = MultiTenantFabric::new(&config)?;
    let aes_trace = fabric.run_activity(None, AesActivity::Continuous, samples);
    let mut aes_act = BitActivity::new(fabric.endpoints());
    for s in &aes_trace.benign {
        aes_act.add(s);
    }

    let census_sets = BitCensus::compare(&ro_act, &aes_act);
    let census = CensusResult {
        total: census_sets.total,
        ro_sensitive: census_sets.source_a.clone(),
        aes_sensitive: census_sets.source_b.clone(),
        intersection: census_sets.intersection(),
        aes_only: census_sets.b_only(),
        unaffected: census_sets.unaffected(),
    };

    let mut rows = Vec::new();
    let mut union: Vec<usize> = census
        .ro_sensitive
        .iter()
        .chain(census.aes_sensitive.iter())
        .copied()
        .collect();
    union.sort_unstable();
    union.dedup();
    for &i in &union {
        rows.push((i, ro_act.variance(i), aes_act.variance(i)));
    }
    let variance = VarianceResult {
        rows,
        best_aes_endpoint: aes_act.best_endpoint(),
        best_ro_endpoint: ro_act.best_endpoint(),
    };
    Ok(ActivityStudy { census, variance })
}

/// Convenience wrapper returning only the census (Figs. 7/15).
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn bit_census(
    circuit: BenignCircuit,
    samples: usize,
    seed: u64,
) -> Result<CensusResult, FabricError> {
    Ok(activity_study(circuit, samples, seed)?.census)
}

/// Convenience wrapper returning only the variance ranking (Figs. 8/16).
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn bit_variance(
    circuit: BenignCircuit,
    samples: usize,
    seed: u64,
) -> Result<VarianceResult, FabricError> {
    Ok(activity_study(circuit, samples, seed)?.variance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ro_response_shows_quiet_then_activity() {
        let r = ro_response(BenignCircuit::DualC6288, 400, 1).unwrap();
        assert_eq!(r.toggle_counts.len(), 400);
        assert!(
            !r.sensitive_bits.is_empty(),
            "RO burst must perturb some endpoints"
        );
        // Quiet lead-in (first ~40 samples, ROs off) vs active phase.
        let quiet: u32 = r.toggle_counts[..35].iter().sum();
        let active: u32 = r.toggle_counts[60..].iter().sum();
        assert!(
            active > quiet.max(1) * 3,
            "activity {active} should dwarf quiet {quiet}"
        );
        // TDC must dip under the droop.
        let tdc_quiet = r.tdc[..35].iter().copied().min().unwrap();
        let tdc_min = r.tdc.iter().copied().min().unwrap();
        assert!(
            tdc_min + 5 < tdc_quiet,
            "tdc {tdc_min} vs quiet {tdc_quiet}"
        );
    }

    #[test]
    fn hw_tracks_tdc_direction() {
        // Fig. 6 is an ALU figure: the post-processed ALU HW moves with
        // the TDC. (The C6288's hazard-rich endpoints fold at RO-scale
        // voltage swings — multiple transitions per endpoint — so its
        // large-signal HW is not monotone; Fig. 14 accordingly shows
        // only its raw toggling.)
        let r = ro_response(BenignCircuit::Alu192, 500, 2).unwrap();
        // correlation between tdc and hw_sensitive across samples
        let n = r.tdc.len() as f64;
        let mx = r.tdc.iter().map(|&x| x as f64).sum::<f64>() / n;
        let my = r.hw_aligned.iter().sum::<f64>() / n;
        let mut num = 0.0;
        let mut dx = 0.0;
        let mut dy = 0.0;
        for (&t, &h) in r.tdc.iter().zip(&r.hw_aligned) {
            num += (t as f64 - mx) * (h - my);
            dx += (t as f64 - mx).powi(2);
            dy += (h - my).powi(2);
        }
        let corr = num / (dx.sqrt() * dy.sqrt()).max(1e-12);
        // The aligned HW counts droops positively, so it must
        // anti-correlate with the TDC depth (which falls under droop).
        assert!(
            corr < -0.3,
            "aligned benign HW must anti-track the TDC, r = {corr}"
        );
    }

    #[test]
    fn census_subset_property() {
        let study = activity_study(BenignCircuit::DualC6288, 2_000, 3).unwrap();
        let c = &study.census;
        assert_eq!(c.total, 64);
        assert!(!c.ro_sensitive.is_empty());
        assert!(!c.aes_sensitive.is_empty());
        // The paper's key census observation: (almost) all AES-affected
        // bits are a subset of the RO-affected ones.
        assert!(
            c.aes_only.len() * 5 <= c.aes_sensitive.len().max(1),
            "AES-only bits {} of {}",
            c.aes_only.len(),
            c.aes_sensitive.len()
        );
        // ROs shake more bits than the (much weaker) AES activity.
        assert!(c.ro_sensitive.len() >= c.aes_sensitive.len());
        assert_eq!(
            c.unaffected,
            c.total - c.ro_sensitive.len() - c.aes_only.len()
        );
    }

    #[test]
    fn variance_ranks_a_best_bit() {
        let v = bit_variance(BenignCircuit::DualC6288, 2_000, 4).unwrap();
        assert!(!v.rows.is_empty());
        let best = v.best_aes_endpoint.expect("AES must perturb some bit");
        let best_var = v
            .rows
            .iter()
            .find(|&&(i, _, _)| i == best)
            .map(|&(_, _, va)| va)
            .unwrap();
        for &(_, _, va) in &v.rows {
            assert!(va <= best_var + 1e-12);
        }
    }
}
