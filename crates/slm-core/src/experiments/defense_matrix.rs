//! The attack-vs-defense matrix: the same CPA campaign re-run under
//! every deployed countermeasure, plus an evaluation of the defender's
//! online detector against the attacker's stimulus signature.
//!
//! This is the defender's view of the paper: given that the stealthy
//! sensor passes every *structural* check, what do the *runtime*
//! countermeasures actually buy? Each matrix cell answers with the
//! attack's measurements-to-disclosure under one defense arm; the
//! detector evaluation answers whether the monitoring plane can tell an
//! attacking tenant from a benign one at all.
//!
//! Cells are independent serial campaigns fanned out over the
//! [`slm_par`] worker pool. Each cell's metrics record into a forked
//! recorder folded back in arm order, so the whole matrix — results
//! and telemetry — is bit-identical at any worker count.

use serde::{Deserialize, Serialize};
use slm_fabric::{
    AdaptivePolicy, AesActivity, DefenseConfig, DetectorConfig, FabricConfig, FabricError,
    FenceMode, FenceSpec, LdoConfig, MultiTenantFabric,
};
use slm_obs::{MetricsFrame, Obs};

use super::cpa::{run_cpa_inner, CpaExperiment, CpaResult};

/// One countermeasure arm of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DefenseArm {
    /// No defense: the paper's baseline attack.
    Undefended,
    /// Constant-current fence at the given draw, amps (the control arm
    /// — correlation is offset-invariant, so this should buy ~nothing).
    ConstantFence(f64),
    /// PRNG-modulated fence with the given peak, amps.
    PrngFence(f64),
    /// SHIELD-style sensor-triggered fence with the given peak, amps.
    AdaptiveFence(f64),
    /// Supply regulation passing this fraction of cross-region
    /// coupling.
    Ldo(f64),
    /// Victim clock-phase randomization up to this many AES cycles.
    ClockJitter(u32),
}

impl DefenseArm {
    /// Short label for reports and logs.
    pub fn label(&self) -> String {
        match self {
            DefenseArm::Undefended => "undefended".into(),
            DefenseArm::ConstantFence(a) => format!("constant-fence({a}A)"),
            DefenseArm::PrngFence(a) => format!("prng-fence({a}A)"),
            DefenseArm::AdaptiveFence(a) => format!("adaptive-fence({a}A)"),
            DefenseArm::Ldo(r) => format!("ldo({r})"),
            DefenseArm::ClockJitter(c) => format!("clock-jitter({c})"),
        }
    }

    /// Builds the defense deployment for this arm, or `None` for the
    /// undefended baseline.
    pub fn deployment(&self, detector: DetectorConfig, seed: u64) -> Option<DefenseConfig> {
        let mut defense = DefenseConfig {
            detector,
            ..DefenseConfig::default()
        };
        defense.seed = seed;
        match *self {
            DefenseArm::Undefended => return None,
            DefenseArm::ConstantFence(a) => defense.fence = Some(FenceSpec::constant(a)),
            DefenseArm::PrngFence(a) => defense.fence = Some(FenceSpec::prng(a)),
            DefenseArm::AdaptiveFence(a) => {
                defense.fence = Some(FenceSpec {
                    mode: FenceMode::Adaptive(AdaptivePolicy {
                        trigger_score: detector.alarm_threshold,
                        release_score: detector.alarm_threshold * 0.5,
                        idle_fraction: 0.1,
                    }),
                    peak_current_a: a,
                });
            }
            DefenseArm::Ldo(r) => defense.ldo = Some(LdoConfig { residual: r }),
            DefenseArm::ClockJitter(c) => {
                defense.clock_jitter = Some(slm_fabric::ClockJitterConfig { max_cycles: c });
            }
        }
        Some(defense)
    }
}

/// Parameters of a full attack-vs-defense matrix run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseMatrixExperiment {
    /// The attack campaign every cell re-runs.
    pub base: CpaExperiment,
    /// The defense arms, one matrix cell each. Keep
    /// [`DefenseArm::Undefended`] first and PRNG fences in ascending
    /// peak order for [`DefenseMatrix::fence_mtd_monotonic`].
    pub arms: Vec<DefenseArm>,
    /// Reset/measure current asymmetry of the attacker's stimulus pair
    /// (the detector's target signature).
    pub stimulus_alternation: f64,
    /// Detector window and alarm threshold used in every defended cell
    /// and in the detector evaluation.
    pub detector: DetectorConfig,
    /// Measure-edge samples per detector-evaluation run.
    pub detector_samples: usize,
    /// Worker threads for the cell fan-out (0 = machine parallelism).
    pub workers: usize,
}

impl DefenseMatrixExperiment {
    /// The default matrix over a base campaign: undefended baseline, a
    /// constant-fence control, a PRNG fence strength sweep, the
    /// adaptive fence, supply regulation, and clock jitter.
    pub fn standard(base: CpaExperiment) -> Self {
        DefenseMatrixExperiment {
            base,
            arms: vec![
                DefenseArm::Undefended,
                DefenseArm::ConstantFence(1.5),
                DefenseArm::PrngFence(0.4),
                DefenseArm::PrngFence(1.5),
                DefenseArm::AdaptiveFence(1.5),
                DefenseArm::Ldo(0.25),
                DefenseArm::ClockJitter(8),
            ],
            stimulus_alternation: 0.3,
            detector: DetectorConfig {
                window_ticks: 4098, // even and divisible by 6
                alarm_threshold: 0.05,
            },
            detector_samples: 8200,
            workers: 0,
        }
    }
}

/// One cell of the matrix: the campaign outcome under one defense arm,
/// with the defense-side telemetry of that run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// The arm this cell deployed.
    pub arm: DefenseArm,
    /// The attack outcome under it.
    pub result: CpaResult,
    /// Mean fence current over the campaign, amps (the defense's power
    /// overhead).
    pub injected_mean_a: f64,
    /// Detector windows that alarmed during the campaign.
    pub alarm_windows: u64,
}

impl MatrixCell {
    /// The cell's effective MTD for ordering: disclosed campaigns rank
    /// by trace count, undisclosed ones rank past every budget.
    pub fn effective_mtd(&self) -> u64 {
        self.result.mtd.unwrap_or(u64::MAX)
    }
}

/// Detector operating point measured against one tenant: alarm counts
/// over a fixed observation span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorReading {
    /// Detector windows completed.
    pub windows: u64,
    /// Windows at or above the alarm threshold.
    pub alarm_windows: u64,
    /// Distinct alarm events.
    pub alarm_events: u64,
    /// Largest window score, taps.
    pub max_score: f64,
}

/// ROC-style evaluation of the anomaly detector: hits against the
/// alternating-stimulus attacker vs false alarms against a benign
/// constant-activity tenant, over the same observation span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorEval {
    /// Reading with the attacker tenant active.
    pub attacker: DetectorReading,
    /// Reading with only benign activity (balanced stimulus).
    pub benign: DetectorReading,
}

impl DetectorEval {
    /// Whether the detector separates the two tenants at this operating
    /// point: at least one hit, zero false alarms.
    pub fn discriminates(&self) -> bool {
        self.attacker.alarm_windows > 0 && self.benign.alarm_windows == 0
    }
}

/// The full matrix: one cell per arm plus the detector evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseMatrix {
    /// Cells in the experiment's arm order.
    pub cells: Vec<MatrixCell>,
    /// Detector hits/false alarms at the experiment's operating point.
    pub detector: DetectorEval,
}

impl DefenseMatrix {
    /// The cell for an arm, if it ran.
    pub fn cell(&self, arm: &DefenseArm) -> Option<&MatrixCell> {
        self.cells.iter().find(|c| c.arm == *arm)
    }

    /// Whether MTD degrades monotonically along the active-fence
    /// strength sweep: the undefended baseline (strength 0) and every
    /// [`DefenseArm::PrngFence`] cell, in ascending peak order, must
    /// have non-decreasing effective MTD.
    pub fn fence_mtd_monotonic(&self) -> bool {
        let mut sweep: Vec<(f64, u64)> = self
            .cells
            .iter()
            .filter_map(|c| match c.arm {
                DefenseArm::Undefended => Some((0.0, c.effective_mtd())),
                DefenseArm::PrngFence(a) => Some((a, c.effective_mtd())),
                _ => None,
            })
            .collect();
        sweep.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite fence strengths"));
        sweep.windows(2).all(|w| w[0].1 <= w[1].1)
    }
}

/// Runs the attack-vs-defense matrix.
///
/// # Errors
///
/// Propagates fabric construction failures from any cell.
pub fn defense_matrix(exp: &DefenseMatrixExperiment) -> Result<DefenseMatrix, FabricError> {
    defense_matrix_recorded(exp, &Obs::null())
}

/// [`defense_matrix`] with an observability handle: each cell runs
/// under a `defense.cell` span in a forked recorder (emitting the
/// campaign's `cpa.*` stream plus `defense.*` injected-current gauges
/// and detection counters), and frames fold back in arm order so merged
/// metrics are worker-count invariant.
///
/// # Errors
///
/// Propagates fabric construction failures from any cell.
pub fn defense_matrix_recorded(
    exp: &DefenseMatrixExperiment,
    obs: &Obs,
) -> Result<DefenseMatrix, FabricError> {
    let cells: Vec<Result<(MatrixCell, MetricsFrame), FabricError>> =
        slm_par::par_map(exp.workers, &exp.arms, |arm| {
            // Cells always record into a live frame — the matrix report
            // needs the defense telemetry even when the caller passed a
            // null handle. With an enabled handle the cell records into
            // a forked sibling instead, folded back in arm order below.
            let cell_obs = if obs.enabled() {
                obs.fork()
            } else {
                Obs::memory()
            };
            let deployment =
                arm.deployment(exp.detector, slm_par::mix_seed(exp.base.seed, arm_tag(arm)));
            let result = {
                let _span = cell_obs.span("defense.cell");
                run_cpa_inner(
                    &exp.base,
                    |config| {
                        config.stimulus_alternation = exp.stimulus_alternation;
                        config.defense = deployment;
                    },
                    &cell_obs,
                )?
            };
            cell_obs.incr("defense.cells");
            // The campaign loop already emitted the defense gauges; the
            // cell keeps the two headline numbers for the report.
            let frame = cell_obs.snapshot();
            let cell = MatrixCell {
                arm: *arm,
                result,
                injected_mean_a: frame
                    .gauges
                    .get("defense.injected_mean_a")
                    .map_or(0.0, |g| g.last),
                alarm_windows: frame.counter("defense.alarm_windows"),
            };
            Ok((cell, frame))
        });

    let mut out = Vec::with_capacity(exp.arms.len());
    for cell in cells {
        let (cell, frame) = cell?;
        obs.absorb(&frame);
        out.push(cell);
    }

    let detector = {
        let _span = obs.span("defense.detector_eval");
        evaluate_detector(exp)?
    };
    if obs.enabled() {
        obs.add("defense.detector_hits", detector.attacker.alarm_windows);
        obs.add(
            "defense.detector_false_alarms",
            detector.benign.alarm_windows,
        );
        obs.gauge(
            "defense.detector_attacker_score",
            detector.attacker.max_score,
        );
        obs.gauge("defense.detector_benign_score", detector.benign.max_score);
    }
    Ok(DefenseMatrix {
        cells: out,
        detector,
    })
}

/// A stable per-arm seed lane (content-derived, so inserting an arm
/// does not re-seed its neighbours). Shared with the fault matrix so
/// the same defense arm lands on the same lane in both sweeps.
pub(crate) fn arm_tag(arm: &DefenseArm) -> u64 {
    match *arm {
        DefenseArm::Undefended => 1,
        DefenseArm::ConstantFence(a) => 0x100 ^ a.to_bits(),
        DefenseArm::PrngFence(a) => 0x200 ^ a.to_bits(),
        DefenseArm::AdaptiveFence(a) => 0x300 ^ a.to_bits(),
        DefenseArm::Ldo(r) => 0x400 ^ r.to_bits(),
        DefenseArm::ClockJitter(c) => 0x500 ^ u64::from(c),
    }
}

/// Runs the detector against the attacker's alternating stimulus and
/// against a balanced benign tenant, on otherwise identical fabrics
/// with a monitor-only defense.
fn evaluate_detector(exp: &DefenseMatrixExperiment) -> Result<DetectorEval, FabricError> {
    let reading = |alternation: f64, seed_lane: u64| -> Result<DetectorReading, FabricError> {
        let config = FabricConfig {
            benign: exp.base.circuit,
            seed: exp.base.seed,
            stimulus_alternation: alternation,
            defense: Some(DefenseConfig {
                detector: exp.detector,
                ..DefenseConfig::monitor_only(slm_par::mix_seed(exp.base.seed, seed_lane))
            }),
            ..FabricConfig::default()
        };
        let mut fabric = MultiTenantFabric::new(&config)?;
        fabric.run_activity(None, AesActivity::Continuous, exp.detector_samples);
        let t = fabric.defense_telemetry().expect("defense deployed");
        Ok(DetectorReading {
            windows: t.windows,
            alarm_windows: t.alarm_windows,
            alarm_events: t.alarm_events,
            max_score: t.max_score,
        })
    };
    Ok(DetectorEval {
        attacker: reading(exp.stimulus_alternation, 0xa77)?,
        benign: reading(0.0, 0xb19)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SensorSource;
    use slm_fabric::BenignCircuit;

    fn quick_base() -> CpaExperiment {
        CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces: 4_000,
            checkpoints: 8,
            pilot_traces: 50,
            seed: 7,
        }
    }

    #[test]
    fn matrix_shows_monotonic_fence_degradation() {
        let exp = DefenseMatrixExperiment::standard(quick_base());
        let matrix = defense_matrix(&exp).unwrap();
        assert_eq!(matrix.cells.len(), exp.arms.len());

        // The undefended attack must still succeed...
        let baseline = matrix.cell(&DefenseArm::Undefended).unwrap();
        assert!(
            baseline.result.mtd.is_some(),
            "undefended attack must disclose"
        );
        // ...MTD must not improve as fence strength rises...
        assert!(matrix.fence_mtd_monotonic(), "MTD sweep not monotonic");
        // ...and the strongest fence must push disclosure beyond the
        // trace budget.
        let strongest = matrix.cell(&DefenseArm::PrngFence(1.5)).unwrap();
        assert!(
            strongest.result.mtd.is_none(),
            "strong fence should defeat the budget: MTD {:?}",
            strongest.result.mtd
        );
        // The fence actually burned power doing it.
        assert!(strongest.injected_mean_a > 0.3);
    }

    #[test]
    fn detector_separates_attacker_from_benign_tenant() {
        let mut exp = DefenseMatrixExperiment::standard(quick_base());
        exp.arms = vec![DefenseArm::Undefended]; // detector eval only
        let matrix = defense_matrix(&exp).unwrap();
        let d = &matrix.detector;
        assert!(d.attacker.windows >= 2);
        assert!(
            d.attacker.alarm_windows > 0,
            "attacker stimulus must alarm (max score {})",
            d.attacker.max_score
        );
        assert_eq!(
            d.benign.alarm_windows, 0,
            "benign tenant false-alarmed (max score {})",
            d.benign.max_score
        );
        assert!(d.discriminates());
        assert!(d.attacker.max_score > d.benign.max_score);
    }

    #[test]
    fn constant_fence_is_ineffective_control() {
        // Pearson correlation is invariant to constant offsets: the
        // constant fence must leave the attack essentially intact.
        let mut exp = DefenseMatrixExperiment::standard(quick_base());
        exp.arms = vec![DefenseArm::Undefended, DefenseArm::ConstantFence(1.5)];
        let matrix = defense_matrix(&exp).unwrap();
        let constant = matrix.cell(&DefenseArm::ConstantFence(1.5)).unwrap();
        assert!(
            constant.result.mtd.is_some(),
            "a constant fence must not stop the attack"
        );
    }
}
