//! Architecture study: which circuit structures make good stealthy
//! sensors?
//!
//! Section VI of the paper argues the attack generalizes to "any path
//! longer than those for control flow"; this extension quantifies that
//! over arithmetic architectures. Every circuit is mapped with the same
//! delay model (same "fabric") and scored across a *sweep* of capture
//! clocks. Two properties emerge:
//!
//! * flat architectures (lookahead/select adders, Wallace trees)
//!   compress endpoint arrivals into a narrow cluster — plenty of
//!   sensor bits, but only if the attacker's clock hits that cluster;
//! * deep serial structures (ripple carry, array multipliers) spread
//!   arrivals across a wide span, so *some* endpoints are usable at
//!   almost any overclock — the "plug and play" property that makes the
//!   paper's ALU the convenient choice.

use serde::{Deserialize, Serialize};
use slm_atpg::{Objective, StimulusSearch};
use slm_fabric::FabricError;
use slm_netlist::generators::{
    array_multiplier, carry_lookahead_adder, carry_select_adder, kogge_stone_adder,
    ripple_carry_adder, wallace_multiplier,
};
use slm_netlist::{words, Netlist};
use slm_timing::{simulate_transition, DelayModel};

/// Sensor-quality metrics for one architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchRow {
    /// Architecture name.
    pub name: String,
    /// Gate count.
    pub gates: usize,
    /// Logic depth (levels).
    pub depth: usize,
    /// STA fmax under the shared delay model, MHz.
    pub fmax_mhz: f64,
    /// Observable endpoints.
    pub endpoints: usize,
    /// Usable sensor bits per swept capture period (±10 % window),
    /// in sweep order.
    pub usable_per_period: Vec<usize>,
    /// Peak usable-bit count over the sweep.
    pub best_count: usize,
    /// Number of swept periods with at least 2 usable bits — the
    /// "tunability" of the circuit as a sensor.
    pub usable_periods: usize,
}

/// The full study result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchStudy {
    /// One row per architecture, in fixed order: rca, cla, csel, ks,
    /// array, wallace.
    pub rows: Vec<ArchRow>,
    /// Swept capture periods, ps.
    pub sweep_ps: Vec<f64>,
    /// Window half-width as a fraction of the capture period.
    pub window_frac: f64,
}

impl ArchStudy {
    /// Row lookup by name.
    pub fn row(&self, name: &str) -> Option<&ArchRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

fn adder_stimulus(n: usize) -> (Vec<bool>, Vec<bool>) {
    let mut reset = words::to_bits(0, n);
    reset.extend(words::to_bits(0, n));
    let mut measure = vec![true; n];
    measure.extend(words::to_bits(1, n));
    (reset, measure)
}

fn score(
    nl: &Netlist,
    stimulus: Option<(Vec<bool>, Vec<bool>)>,
    model: &DelayModel,
    sweep_ps: &[f64],
    window_frac: f64,
    seed: u64,
) -> Result<ArchRow, FabricError> {
    let ann = model.annotate(nl);
    let sta = ann.sta()?;
    let (reset, measure) = match stimulus {
        Some(pair) => pair,
        None => {
            // multipliers: search a pair that maximizes activity across
            // the middle of the circuit's own delay range
            let crit = sta.critical_ps();
            let search = StimulusSearch::new(
                &ann,
                Objective::MaxActiveEndpoints {
                    window_lo_ps: 0.2 * crit,
                    window_hi_ps: 0.9 * crit,
                },
            );
            let found = search.run(3, seed);
            (found.reset, found.measure)
        }
    };
    let waves = simulate_transition(&ann, &reset, &measure)?;
    let outs = waves.output_waves();
    let usable_per_period: Vec<usize> = sweep_ps
        .iter()
        .map(|&capture_ps| {
            let lo = ((capture_ps * (1.0 - window_frac)) * 1000.0) as u64;
            let hi = ((capture_ps * (1.0 + window_frac)) * 1000.0) as u64;
            outs.iter()
                .filter(|w| w.transitions.iter().any(|&(t, _)| t >= lo && t <= hi))
                .count()
        })
        .collect();
    let stats = nl.stats()?;
    Ok(ArchRow {
        name: nl.name().to_string(),
        gates: stats.gates,
        depth: stats.depth,
        fmax_mhz: sta.fmax_mhz(),
        endpoints: nl.outputs().len(),
        best_count: usable_per_period.iter().copied().max().unwrap_or(0),
        usable_periods: usable_per_period.iter().filter(|&&c| c >= 2).count(),
        usable_per_period,
    })
}

/// Runs the architecture study at the paper's 300 MHz capture clock.
///
/// # Errors
///
/// Propagates generation and timing failures.
pub fn architecture_study(seed: u64) -> Result<ArchStudy, FabricError> {
    // sweep capture periods from 1 ns to 16 ns (1 GHz down to 62.5 MHz)
    let sweep_ps: Vec<f64> = (4..=64).map(|k| k as f64 * 250.0).collect();
    let window_frac = 0.10;
    let model = DelayModel::default();
    let n = 64; // common adder width; multipliers 16×16
    let rows = vec![
        score(
            &ripple_carry_adder(n)?,
            Some(adder_stimulus(n)),
            &model,
            &sweep_ps,
            window_frac,
            seed,
        )?,
        score(
            &carry_lookahead_adder(n)?,
            Some(adder_stimulus(n)),
            &model,
            &sweep_ps,
            window_frac,
            seed,
        )?,
        score(
            &carry_select_adder(n)?,
            Some(adder_stimulus(n)),
            &model,
            &sweep_ps,
            window_frac,
            seed,
        )?,
        score(
            &kogge_stone_adder(n)?,
            Some(adder_stimulus(n)),
            &model,
            &sweep_ps,
            window_frac,
            seed,
        )?,
        score(
            &array_multiplier(16)?,
            None,
            &model,
            &sweep_ps,
            window_frac,
            seed,
        )?,
        score(
            &wallace_multiplier(16)?,
            None,
            &model,
            &sweep_ps,
            window_frac,
            seed,
        )?,
    ];
    Ok(ArchStudy {
        rows,
        sweep_ps,
        window_frac,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_structures_are_tunable_everywhere() {
        let study = architecture_study(3).unwrap();
        assert_eq!(study.rows.len(), 6);
        let ks = study.row("ks64").unwrap();
        let rca = study.row("rca64").unwrap();
        let cla = study.row("cla64").unwrap();
        let array = study.row("mul16x16").unwrap();
        let wallace = study.row("wallace16x16").unwrap();
        let csel = study.row("csel64").unwrap();
        // deep/serial structures are usable across most of the sweep;
        // truly flat ones (carry-select, Wallace) only in a narrow band
        assert!(
            rca.usable_periods > 2 * csel.usable_periods,
            "rca {} vs csel {}",
            rca.usable_periods,
            csel.usable_periods
        );
        assert!(
            array.usable_periods > 2 * wallace.usable_periods,
            "array {} vs wallace {}",
            array.usable_periods,
            wallace.usable_periods
        );
        // the flip side: flat architectures concentrate more usable bits
        // at their sweet spot
        assert!(csel.best_count > rca.best_count);
        // group-serial CLA behaves like the RCA (wide band)
        assert!(cla.usable_periods > 2 * csel.usable_periods);
        // the log-depth Kogge-Stone is the narrowest of the adders
        assert!(
            ks.usable_periods < rca.usable_periods,
            "ks {} vs rca {}",
            ks.usable_periods,
            rca.usable_periods
        );
        // fmax ordering is the inverse of depth
        assert!(cla.fmax_mhz > rca.fmax_mhz);
        assert!(wallace.fmax_mhz > array.fmax_mhz);
        for row in &study.rows {
            assert!(row.gates > 0 && row.depth > 0);
            assert!(row.best_count <= row.endpoints);
            assert_eq!(row.usable_per_period.len(), study.sweep_ps.len());
        }
    }
}
