//! Crash-safe streaming CPA campaigns.
//!
//! Million-trace campaigns (the cloud-FPGA case study's 10⁵–10⁷-trace
//! defended runs) cannot hold their raw traces in memory and cannot
//! afford to lose hours of capture to a process death. The streaming
//! engine runs the budget as bounded-memory *windows*: capture a
//! window on its own re-seeded fabric ([`FabricConfig::for_shard`],
//! exactly the parallel runner's shard lanes), fold it into the
//! mergeable accumulators, drop the raw traces. Every
//! `commit_every_windows` windows the engine seals the accumulator
//! state — plus the progress curves and a campaign-parameter
//! fingerprint — into a [`StreamCheckpoint`] and commits it to an
//! atomic generation ledger ([`CheckpointLedger`]: write-to-temp,
//! checksum, rename).
//!
//! # Exact-once window accounting
//!
//! A window is the unit of durability. Because window `i`'s capture
//! stream depends only on the campaign seed and `i` — never on which
//! worker ran it, wall-clock time, or what happened to earlier windows
//! in this process — a window that dies mid-capture or mid-fold is
//! simply re-captured from its seed lane on resume, bit-identically.
//! A committed window is never re-captured: resume starts at the first
//! window past the last committed generation. The resume path verifies
//! the checkpoint's window/trace accounting against the current shard
//! plan's prefix, so a checkpoint can never be silently merged into a
//! campaign whose window layout it does not prefix.
//!
//! # Crash injection
//!
//! [`CrashPlan`] injects simulated process deaths at the boundaries of
//! the capture → fold → commit pipeline ([`CrashSite`]), including a
//! *torn commit* that persists a truncated generation before dying —
//! the on-disk faults (bit flips, truncation, stale temp files) are
//! exercised directly against the store layer. The kill/resume
//! property tests assert that a run killed at arbitrary sites and
//! resumed produces a [`CpaResult`] bit-identical to the uninterrupted
//! run, at any worker count.

use super::cpa::{absorb_record, assemble_result, pilot_setup, CpaExperiment, CpaResult};
use serde::{Deserialize, Serialize};
use slm_cpa::store::{
    read_stream_checkpoint, write_stream_checkpoint, CheckpointLedger, StreamCheckpoint,
};
use slm_cpa::{leader_margin, CpaAttack, ProgressPoint};
use slm_fabric::{CaptureRecord, FabricConfig, FabricError, MultiTenantFabric};
use slm_obs::{MetricsFrame, Obs};
use slm_par::ShardPlan;
use std::path::Path;

/// A streaming, checkpointed CPA campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingCpa {
    /// The campaign parameters (budget, source, seed).
    pub base: CpaExperiment,
    /// Traces per window — the unit of capture, fold and re-capture on
    /// resume, and the bound on retained raw traces. Like the parallel
    /// runner's shard size, the window layout depends only on this and
    /// the budget, never on `workers`.
    pub window_traces: u64,
    /// Windows folded between ledger commits. Commit cadence is
    /// defined in windows — never derived from the worker count — so
    /// the progress curve and checkpoint stream are worker-invariant.
    pub commit_every_windows: u64,
    /// Worker threads capturing windows (0 = machine parallelism).
    pub workers: usize,
    /// Optional online-MTD early stop, evaluated at every commit.
    pub early_stop: Option<EarlyStop>,
    /// Caller-chosen tag folded into the campaign fingerprint. A
    /// fabric tweak passed to [`run_streaming_with`] is opaque to the
    /// engine; callers that tweak the config must tag the tweak here
    /// so a checkpoint from a differently-defended campaign is refused
    /// on resume.
    pub config_tag: u64,
}

impl StreamingCpa {
    /// Wraps a campaign with a window of one sixteenth of the budget
    /// (clamped to 1..=4096 traces), commits at every window, machine
    /// parallelism, and no early stop.
    pub fn new(base: CpaExperiment) -> Self {
        StreamingCpa {
            base,
            window_traces: (base.traces / 16).clamp(1, 4096),
            commit_every_windows: 1,
            workers: 0,
            early_stop: None,
            config_tag: 0,
        }
    }

    /// Sets the window size in traces (minimum 1).
    pub fn with_window(mut self, window_traces: u64) -> Self {
        self.window_traces = window_traces.max(1);
        self
    }

    /// Sets the commit cadence in windows (minimum 1).
    pub fn with_commit_every(mut self, windows: u64) -> Self {
        self.commit_every_windows = windows.max(1);
        self
    }

    /// Sets the worker count (0 = machine parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables the online-MTD early stop.
    pub fn with_early_stop(mut self, rule: EarlyStop) -> Self {
        self.early_stop = Some(rule);
        self
    }

    /// Tags the campaign fingerprint (see [`StreamingCpa::config_tag`]).
    pub fn with_config_tag(mut self, tag: u64) -> Self {
        self.config_tag = tag;
        self
    }

    /// The window layout this campaign will execute.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan::new(self.base.traces, self.window_traces)
    }

    /// The campaign-parameter fingerprint stored in every checkpoint.
    ///
    /// Covers everything that determines the capture stream and the
    /// checkpoint cadence: circuit, sensor source, pilot size, seed,
    /// window size, commit cadence and the caller's `config_tag`. It
    /// deliberately excludes the trace budget (a resumed campaign may
    /// extend its budget), the worker count (results are
    /// worker-invariant) and the early-stop rule (a stop policy, not a
    /// capture parameter).
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&format!(
            "{:?}|{:?}|pilot={}|seed={}|window={}|commit={}|tag={}",
            self.base.circuit,
            self.base.source,
            self.base.pilot_traces,
            self.base.seed,
            self.window_traces,
            self.commit_every_windows,
            self.config_tag,
        ))
    }
}

/// FNV-1a over a parameter string — stable across runs and platforms.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Online-MTD early stop, evaluated over the persisted progress curves
/// at every commit — so a killed and resumed campaign makes the same
/// stop decision at the same commit as the uninterrupted run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlyStop {
    /// Never stop before this many traces.
    pub min_traces: u64,
    /// The same candidate must lead for this many consecutive commits.
    pub stable_commits: usize,
    /// ... each with at least this leader margin.
    pub min_margin: f64,
}

impl EarlyStop {
    /// Whether the rule fires on these progress curves (the slot with
    /// the best final leader margin decides, matching the slot
    /// selection in [`assemble_result`]).
    fn satisfied(&self, progress_per: &[Vec<ProgressPoint>]) -> bool {
        let slot = progress_per
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let ma = a.last().map_or(0.0, |p| leader_margin(&p.peak_corr));
                let mb = b.last().map_or(0.0, |p| leader_margin(&p.peak_corr));
                ma.partial_cmp(&mb).expect("margins are finite")
            })
            .map_or(0, |(i, _)| i);
        let curve = &progress_per[slot];
        let Some(last) = curve.last() else {
            return false;
        };
        if last.traces < self.min_traces || curve.len() < self.stable_commits.max(1) {
            return false;
        }
        let leader = leading_candidate(&last.peak_corr);
        curve[curve.len() - self.stable_commits.max(1)..]
            .iter()
            .all(|p| {
                leading_candidate(&p.peak_corr) == leader
                    && leader_margin(&p.peak_corr) >= self.min_margin
            })
    }
}

/// Index of the highest peak — the leading key candidate.
fn leading_candidate(peaks: &[f64]) -> usize {
    peaks
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("peaks are finite"))
        .map_or(0, |(i, _)| i)
}

/// Outcome of a completed streaming campaign.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StreamingResult {
    /// The campaign result, bit-identical to the same campaign run
    /// uninterrupted at any worker count.
    pub result: CpaResult,
    /// Windows captured, folded and committed.
    pub windows: u64,
    /// Traces those windows contributed (less than the budget when the
    /// early stop fired).
    pub traces: u64,
    /// Whether the online-MTD early stop ended the campaign.
    pub early_stopped: bool,
    /// The ledger generation this run resumed from, if any.
    pub resumed_generation: Option<u64>,
    /// Newer generations that were torn/corrupt and skipped during
    /// resume — non-zero means the ledger degraded gracefully.
    pub recovered_generations: u64,
    /// Peak raw traces retained in memory by any window of this
    /// process — bounded by `window_traces` regardless of budget.
    pub peak_raw_traces: u64,
}

/// Outcome of a fault-injected streaming run.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOutcome {
    /// The campaign ran to its budget (or early stop).
    Complete(StreamingResult),
    /// A [`CrashPlan`] kill site fired: the process "died" with this
    /// much work durably committed. Resume by running again over the
    /// same ledger directory.
    Killed {
        /// Windows committed before the kill.
        windows_committed: u64,
        /// Traces committed before the kill.
        traces_committed: u64,
    },
}

/// Where in the window pipeline a [`CrashPlan`] kill fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// After the commit group's windows are captured, before folding.
    AfterCapture,
    /// After folding into the merged accumulators, before the commit.
    AfterFold,
    /// Mid-commit: a truncated generation reaches the ledger directory
    /// under its final name, then the process dies — the torn-write
    /// case the generation ledger must fall back past.
    TornCommit,
    /// Immediately after a successful commit.
    AfterCommit,
}

/// A deterministic schedule of simulated process deaths, in the spirit
/// of the fault-study `WireFaultPlan`: each entry kills the run the first
/// time the named commit group reaches the named site. Kills fire in
/// list order; a consumed plan (all kills fired) lets the run complete,
/// so one plan can drive a whole kill/resume/kill/resume chain.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashPlan {
    kills: Vec<(u64, CrashSite)>,
    fired: usize,
}

impl CrashPlan {
    /// No injected crashes.
    pub fn none() -> Self {
        CrashPlan {
            kills: Vec::new(),
            fired: 0,
        }
    }

    /// Adds a kill the first time commit group `group` reaches `site`.
    pub fn kill_at(mut self, group: u64, site: CrashSite) -> Self {
        self.kills.push((group, site));
        self
    }

    /// How many scheduled kills have fired.
    pub fn fired(&self) -> usize {
        self.fired
    }

    /// Consumes the next scheduled kill if it matches this site.
    fn should_kill(&mut self, group: u64, site: CrashSite) -> bool {
        if self.kills.get(self.fired) == Some(&(group, site)) {
            self.fired += 1;
            true
        } else {
            false
        }
    }
}

/// Why a streaming campaign could not run.
#[derive(Debug)]
pub enum StreamingError {
    /// Fabric construction failed.
    Fabric(FabricError),
    /// The checkpoint ledger could not be read or written.
    Io(std::io::Error),
    /// A resume checkpoint exists but belongs to a different campaign
    /// (fingerprint, slot geometry or window accounting mismatch).
    /// Refusing is the safe default: merging it would silently corrupt
    /// the result.
    Incompatible(String),
}

impl std::fmt::Display for StreamingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamingError::Fabric(e) => write!(f, "fabric error: {e}"),
            StreamingError::Io(e) => write!(f, "checkpoint store error: {e}"),
            StreamingError::Incompatible(why) => {
                write!(f, "checkpoint incompatible with this campaign: {why}")
            }
        }
    }
}

impl std::error::Error for StreamingError {}

impl From<FabricError> for StreamingError {
    fn from(e: FabricError) -> Self {
        StreamingError::Fabric(e)
    }
}

impl From<std::io::Error> for StreamingError {
    fn from(e: std::io::Error) -> Self {
        StreamingError::Io(e)
    }
}

/// Runs (or resumes) a streaming campaign against the checkpoint
/// ledger in `dir`.
///
/// # Errors
///
/// Fabric construction, ledger I/O, or an incompatible checkpoint.
pub fn run_streaming(
    exp: &StreamingCpa,
    dir: impl AsRef<Path>,
) -> Result<StreamingResult, StreamingError> {
    run_streaming_with_recorded(exp, dir, |_| {}, &Obs::null())
}

/// [`run_streaming`] with an observability handle: emits `stream.*`
/// counters/gauges (windows committed, commits, resumes, recovered
/// generations, bytes journaled, peak retained raw traces, traces/sec)
/// on top of the usual `cpa.*` stream.
///
/// # Errors
///
/// Fabric construction, ledger I/O, or an incompatible checkpoint.
pub fn run_streaming_recorded(
    exp: &StreamingCpa,
    dir: impl AsRef<Path>,
    obs: &Obs,
) -> Result<StreamingResult, StreamingError> {
    run_streaming_with_recorded(exp, dir, |_| {}, obs)
}

/// [`run_streaming`] with a fabric-configuration hook applied before
/// the pilot and before window re-seeding — the streaming analogue of
/// `run_cpa_parallel_with`. Callers that tweak the config must set
/// [`StreamingCpa::config_tag`] so checkpoints from differently-tweaked
/// campaigns are refused.
///
/// # Errors
///
/// Fabric construction, ledger I/O, or an incompatible checkpoint.
pub fn run_streaming_with(
    exp: &StreamingCpa,
    dir: impl AsRef<Path>,
    tweak: impl FnOnce(&mut FabricConfig),
) -> Result<StreamingResult, StreamingError> {
    run_streaming_with_recorded(exp, dir, tweak, &Obs::null())
}

/// [`run_streaming_with`] with an observability handle.
///
/// # Errors
///
/// Fabric construction, ledger I/O, or an incompatible checkpoint.
pub fn run_streaming_with_recorded(
    exp: &StreamingCpa,
    dir: impl AsRef<Path>,
    tweak: impl FnOnce(&mut FabricConfig),
    obs: &Obs,
) -> Result<StreamingResult, StreamingError> {
    match run_streaming_crashing(exp, dir, tweak, obs, &mut CrashPlan::none())? {
        StreamOutcome::Complete(r) => Ok(r),
        StreamOutcome::Killed { .. } => unreachable!("empty crash plan never kills"),
    }
}

/// One captured-and-folded window, travelling from a worker back to
/// the fold loop with its private metrics frame.
struct WindowPartial {
    attacks: Vec<CpaAttack>,
    retained: u64,
    frame: MetricsFrame,
}

/// The full fault-injectable engine: runs (or resumes) the campaign,
/// dying at the [`CrashPlan`]'s kill sites.
///
/// # Errors
///
/// Fabric construction, ledger I/O, or an incompatible checkpoint.
pub fn run_streaming_crashing(
    exp: &StreamingCpa,
    dir: impl AsRef<Path>,
    tweak: impl FnOnce(&mut FabricConfig),
    obs: &Obs,
    crash: &mut CrashPlan,
) -> Result<StreamOutcome, StreamingError> {
    let started = std::time::Instant::now();
    let base = &exp.base;
    let commit_every = exp.commit_every_windows.max(1);
    let mut config = FabricConfig {
        benign: base.circuit,
        seed: base.seed,
        ..FabricConfig::default()
    };
    tweak(&mut config);
    // The pilot is not streamed: it is cheap, deterministic, and reruns
    // identically on every resume, so its decisions never need to be
    // persisted.
    let (_pilot_fabric, setup) = {
        let _pilot_span = obs.span("stream.pilot");
        pilot_setup(base, &config)?
    };

    let fingerprint = exp.fingerprint();
    let plan = exp.plan();
    let windows = plan.shards();
    let ledger = CheckpointLedger::open(dir.as_ref())?;

    // ---- resume ---------------------------------------------------------
    let mut merged: Vec<CpaAttack> = (0..setup.single_bit_slots)
        .map(|_| CpaAttack::new(setup.model, setup.points))
        .collect();
    let mut progress_per: Vec<Vec<ProgressPoint>> = vec![Vec::new(); setup.single_bit_slots];
    let mut windows_done = 0u64;
    let mut traces_done = 0u64;
    let mut resumed_generation = None;
    let mut recovered_generations = 0u64;
    if let Some(recovery) = ledger.load_latest(|bytes| read_stream_checkpoint(bytes))? {
        let cp = recovery.state;
        let incompatible = |why: String| Err(StreamingError::Incompatible(why));
        if cp.fingerprint != fingerprint {
            return incompatible(format!(
                "checkpoint fingerprint {:#018x} != campaign fingerprint {:#018x} \
                 (different circuit/source/seed/window/commit/tag)",
                cp.fingerprint, fingerprint
            ));
        }
        if cp.slots.len() != setup.single_bit_slots {
            return incompatible(format!(
                "checkpoint has {} accumulator slots, pilot derived {}",
                cp.slots.len(),
                setup.single_bit_slots
            ));
        }
        for (i, slot) in cp.slots.iter().enumerate() {
            if slot.points != setup.points
                || slot.model.ct_byte != setup.model.ct_byte
                || slot.model.bit != setup.model.bit
            {
                return incompatible(format!(
                    "slot {i} geometry ({} points, ct_byte {}, bit {}) does not match \
                     the pilot ({} points, ct_byte {}, bit {})",
                    slot.points,
                    slot.model.ct_byte,
                    slot.model.bit,
                    setup.points,
                    setup.model.ct_byte,
                    setup.model.bit
                ));
            }
        }
        // Exact-once accounting: the committed windows must be a prefix
        // of the current plan, trace for trace. (A budget extension
        // keeps the prefix intact only if the old budget was a whole
        // number of windows — otherwise the old final partial window
        // would silently change its capture stream, which this check
        // refuses.)
        if cp.windows as usize > windows.len() {
            return incompatible(format!(
                "checkpoint committed {} windows but this budget only has {}",
                cp.windows,
                windows.len()
            ));
        }
        let prefix: u64 = windows[..cp.windows as usize]
            .iter()
            .map(|w| w.traces)
            .sum();
        if prefix != cp.traces {
            return incompatible(format!(
                "checkpoint claims {} traces over {} windows; this plan's prefix \
                 holds {prefix} — window layouts differ",
                cp.traces, cp.windows
            ));
        }
        // The committed windows must also sit on this plan's commit
        // grid: the old run's final (budget-truncated) commit group is
        // only a valid resume point if no further windows follow it —
        // otherwise the extended run would emit a progress point a
        // from-scratch run of the same budget would not, breaking
        // bit-identical equivalence.
        if cp.windows % commit_every != 0 && (cp.windows as usize) < windows.len() {
            return incompatible(format!(
                "checkpoint's {} committed windows are not a multiple of the \
                 commit cadence ({commit_every}); extend the budget in whole \
                 commit groups",
                cp.windows
            ));
        }
        windows_done = cp.windows;
        traces_done = cp.traces;
        progress_per = cp.progress;
        merged = cp
            .slots
            .into_iter()
            .map(CpaAttack::resume)
            .collect::<std::io::Result<_>>()?;
        resumed_generation = Some(recovery.generation);
        recovered_generations = recovery.skipped.len() as u64;
        obs.incr("stream.resumes");
        obs.add("stream.recovered_generations", recovered_generations);
    }

    // ---- windowed main phase -------------------------------------------
    let mut peak_raw = 0u64;
    let mut captured_this_run = 0u64;
    let mut early_stopped = exp
        .early_stop
        .is_some_and(|rule| rule.satisfied(&progress_per));
    while windows_done < windows.len() as u64 && !early_stopped {
        let group_index = windows_done / commit_every;
        let group_end = ((group_index + 1) * commit_every).min(windows.len() as u64);
        let group = &windows[windows_done as usize..group_end as usize];
        let committed_windows = windows_done;
        let committed_traces = traces_done;

        // Capture: each window on its own fabric, re-seeded from its
        // lane, raw records buffered only for the window's lifetime.
        let partials: Vec<Result<WindowPartial, FabricError>> =
            slm_par::par_map(exp.workers, group, |spec| {
                let w_obs = obs.fork();
                let w_config = config.for_shard(spec.index);
                let mut fabric = {
                    let _span = w_obs.span("stream.window");
                    MultiTenantFabric::new(&w_config)?
                };
                let mut raw: Vec<CaptureRecord> = Vec::with_capacity(spec.traces as usize);
                for _ in 0..spec.traces {
                    let pt = fabric.random_plaintext();
                    raw.push(fabric.encrypt_windowed(pt, setup.window.clone(), &setup.endpoints));
                }
                let retained = raw.len() as u64;
                let mut attacks: Vec<CpaAttack> = (0..setup.single_bit_slots)
                    .map(|_| CpaAttack::new(setup.model, setup.points))
                    .collect();
                let mut point_buf = vec![0.0f64; setup.points];
                for rec in raw.drain(..) {
                    absorb_record(
                        base.source,
                        &setup,
                        &rec,
                        &mut attacks,
                        &mut point_buf,
                        &w_obs,
                    );
                }
                if w_obs.enabled() {
                    let t = fabric.pdn_telemetry();
                    w_obs.gauge("pdn.v_min", t.v_min);
                    w_obs.gauge("pdn.v_max", t.v_max);
                    w_obs.gauge("pdn.settled_streak", t.settled_streak as f64);
                    if let Some(d) = fabric.defense_telemetry() {
                        w_obs.gauge("defense.injected_max_a", d.injected_max_a);
                        w_obs.gauge("defense.injected_mean_a", d.injected_mean_a());
                        w_obs.gauge("defense.detector_max_score", d.max_score);
                        w_obs.add("defense.windows", d.windows);
                        w_obs.add("defense.alarm_windows", d.alarm_windows);
                        w_obs.add("defense.alarm_events", d.alarm_events);
                        w_obs.add("defense.jitter_cycles", d.jitter_cycles);
                    }
                }
                Ok(WindowPartial {
                    attacks,
                    retained,
                    frame: w_obs.snapshot(),
                })
            });
        if crash.should_kill(group_index, CrashSite::AfterCapture) {
            return Ok(StreamOutcome::Killed {
                windows_committed: committed_windows,
                traces_committed: committed_traces,
            });
        }

        // Fold in window order — the same prefix-merge discipline as
        // the parallel runner, so results and merged metrics are
        // worker-count invariant.
        for (partial, spec) in partials.into_iter().zip(group) {
            let partial = partial?;
            obs.absorb(&partial.frame);
            peak_raw = peak_raw.max(partial.retained);
            for (acc, part) in merged.iter_mut().zip(&partial.attacks) {
                acc.merge_recorded(part, obs);
            }
            traces_done += spec.traces;
            captured_this_run += spec.traces;
        }
        windows_done = group_end;
        if crash.should_kill(group_index, CrashSite::AfterFold) {
            return Ok(StreamOutcome::Killed {
                windows_committed: committed_windows,
                traces_committed: committed_traces,
            });
        }

        // Checkpoint: progress point per slot, early-stop evaluation,
        // sealed commit to the generation ledger.
        for (slot, acc) in merged.iter().enumerate() {
            let peaks = acc.peak_correlations_par(exp.workers).to_vec();
            if slot == 0 {
                obs.observe("stream.checkpoint_margin", leader_margin(&peaks));
            }
            progress_per[slot].push(ProgressPoint {
                traces: traces_done,
                peak_corr: peaks,
            });
        }
        early_stopped = exp
            .early_stop
            .is_some_and(|rule| rule.satisfied(&progress_per));
        let cp = StreamCheckpoint {
            fingerprint,
            windows: windows_done,
            traces: traces_done,
            slots: merged.iter().map(CpaAttack::checkpoint).collect(),
            progress: progress_per.clone(),
        };
        let mut bytes = Vec::new();
        write_stream_checkpoint(&mut bytes, &cp)?;
        if crash.should_kill(group_index, CrashSite::TornCommit) {
            ledger.commit(&bytes[..bytes.len() / 2])?;
            return Ok(StreamOutcome::Killed {
                windows_committed: committed_windows,
                traces_committed: committed_traces,
            });
        }
        ledger.commit(&bytes)?;
        obs.add("stream.windows_committed", group.len() as u64);
        obs.incr("stream.commits");
        obs.add("stream.bytes_journaled", bytes.len() as u64);
        if crash.should_kill(group_index, CrashSite::AfterCommit) {
            return Ok(StreamOutcome::Killed {
                windows_committed: windows_done,
                traces_committed: traces_done,
            });
        }
    }

    if early_stopped {
        obs.incr("stream.early_stop");
    }
    obs.gauge("stream.peak_raw_traces", peak_raw as f64);
    if obs.enabled() {
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 && captured_this_run > 0 {
            obs.gauge("stream.traces_per_sec", captured_this_run as f64 / secs);
        }
    }

    let result = assemble_result(
        base,
        &setup,
        &merged,
        progress_per,
        exp.workers,
        traces_done,
    );
    Ok(StreamOutcome::Complete(StreamingResult {
        result,
        windows: windows_done,
        traces: traces_done,
        early_stopped,
        resumed_generation,
        recovered_generations,
        peak_raw_traces: peak_raw,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SensorSource;
    use slm_fabric::BenignCircuit;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("slm-streaming-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_exp(seed: u64) -> StreamingCpa {
        StreamingCpa::new(CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces: 300,
            checkpoints: 3,
            pilot_traces: 20,
            seed,
        })
        .with_window(60)
        .with_commit_every(2)
        .with_workers(1)
    }

    #[test]
    fn streaming_matches_itself_across_worker_counts() {
        let d1 = scratch_dir("wc1");
        let d3 = scratch_dir("wc3");
        let r1 = run_streaming(&small_exp(21), &d1).unwrap();
        let r3 = run_streaming(&small_exp(21).with_workers(3), &d3).unwrap();
        assert_eq!(r1.result, r3.result);
        assert_eq!(r1.windows, 5);
        assert_eq!(r1.traces, 300);
        assert!(!r1.early_stopped);
        assert_eq!(r1.resumed_generation, None);
        // 5 windows at commit-every-2 ⇒ commits after windows 2, 4, 5.
        assert_eq!(r1.result.progress.len(), 3);
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d3);
    }

    #[test]
    fn kill_and_resume_is_bit_identical() {
        let clean_dir = scratch_dir("clean");
        let clean = run_streaming(&small_exp(22), &clean_dir).unwrap();

        let dir = scratch_dir("killed");
        let exp = small_exp(22);
        let mut plan = CrashPlan::none()
            .kill_at(0, CrashSite::AfterCommit)
            .kill_at(1, CrashSite::AfterFold);
        let k1 = run_streaming_crashing(&exp, &dir, |_| {}, &Obs::null(), &mut plan).unwrap();
        assert_eq!(
            k1,
            StreamOutcome::Killed {
                windows_committed: 2,
                traces_committed: 120
            }
        );
        let k2 = run_streaming_crashing(&exp, &dir, |_| {}, &Obs::null(), &mut plan).unwrap();
        // Second kill fires after the fold of group 1, before its
        // commit — so only group 0's commit is durable.
        assert_eq!(
            k2,
            StreamOutcome::Killed {
                windows_committed: 2,
                traces_committed: 120
            }
        );
        let resumed = run_streaming(&exp, &dir).unwrap();
        assert_eq!(resumed.result, clean.result);
        assert_eq!(resumed.resumed_generation, Some(1));
        assert_eq!(resumed.recovered_generations, 0);
        let _ = std::fs::remove_dir_all(&clean_dir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_commit_degrades_to_previous_generation() {
        let clean_dir = scratch_dir("torn-clean");
        let clean = run_streaming(&small_exp(23), &clean_dir).unwrap();

        let dir = scratch_dir("torn");
        let exp = small_exp(23);
        let mut plan = CrashPlan::none().kill_at(1, CrashSite::TornCommit);
        let killed = run_streaming_crashing(&exp, &dir, |_| {}, &Obs::null(), &mut plan).unwrap();
        assert_eq!(
            killed,
            StreamOutcome::Killed {
                windows_committed: 2,
                traces_committed: 120
            }
        );
        let obs = Obs::memory();
        let resumed = run_streaming_recorded(&exp, &dir, &obs).unwrap();
        assert_eq!(resumed.result, clean.result);
        // Generation 2 is torn; resume fell back to generation 1.
        assert_eq!(resumed.resumed_generation, Some(1));
        assert_eq!(resumed.recovered_generations, 1);
        let frame = obs.snapshot();
        assert_eq!(frame.counter("stream.resumes"), 1);
        assert_eq!(frame.counter("stream.recovered_generations"), 1);
        let _ = std::fs::remove_dir_all(&clean_dir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_checkpoint_is_refused() {
        let dir = scratch_dir("foreign");
        let exp = small_exp(24);
        let mut plan = CrashPlan::none().kill_at(0, CrashSite::AfterCommit);
        run_streaming_crashing(&exp, &dir, |_| {}, &Obs::null(), &mut plan).unwrap();
        // Same directory, different seed ⇒ different fingerprint.
        let err = run_streaming(&small_exp(25), &dir).unwrap_err();
        match err {
            StreamingError::Incompatible(why) => {
                assert!(why.contains("fingerprint"), "unhelpful error: {why}")
            }
            other => panic!("expected Incompatible, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn early_stop_ends_campaign_under_budget() {
        let dir = scratch_dir("early");
        let exp = StreamingCpa::new(CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces: 4_000,
            checkpoints: 4,
            pilot_traces: 100,
            seed: 7,
        })
        .with_window(500)
        .with_commit_every(1)
        .with_workers(2)
        .with_early_stop(EarlyStop {
            min_traces: 1_000,
            stable_commits: 2,
            min_margin: 0.01,
        });
        let obs = Obs::memory();
        let r = run_streaming_recorded(&exp, &dir, &obs).unwrap();
        assert!(r.early_stopped);
        assert!(
            r.traces < 4_000,
            "TDC converges well before 4k; stopped at {}",
            r.traces
        );
        assert_eq!(r.result.recovered_key_byte, Some(r.result.correct_key_byte));
        assert_eq!(r.result.traces, r.traces);
        assert_eq!(obs.snapshot().counter("stream.early_stop"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_separates_campaign_parameters() {
        let base = small_exp(30);
        assert_eq!(base.fingerprint(), small_exp(30).fingerprint());
        assert_ne!(base.fingerprint(), small_exp(31).fingerprint());
        assert_ne!(
            base.fingerprint(),
            small_exp(30).with_window(61).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            small_exp(30).with_commit_every(3).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            small_exp(30).with_config_tag(1).fingerprint()
        );
        // Budget, workers and early stop are deliberately excluded.
        let mut extended = small_exp(30);
        extended.base.traces = 600;
        assert_eq!(base.fingerprint(), extended.fingerprint());
        assert_eq!(
            base.fingerprint(),
            small_exp(30).with_workers(8).fingerprint()
        );
    }

    #[test]
    fn budget_extension_resumes_from_completed_run() {
        let dir = scratch_dir("extend");
        // 240 traces = 4 windows = 2 whole commit groups, so the
        // completed run sits on the extended plan's commit grid.
        let mut exp = small_exp(26);
        exp.base.traces = 240;
        let first = run_streaming(&exp, &dir).unwrap();
        assert_eq!(first.traces, 240);
        let mut extended = exp;
        extended.base.traces = 480;
        let obs = Obs::memory();
        let second = run_streaming_recorded(&extended, &dir, &obs).unwrap();
        assert_eq!(second.resumed_generation, Some(2));
        assert_eq!(second.traces, 480);
        assert_eq!(second.windows, 8);
        // Only the 4 new windows were captured in this process.
        assert_eq!(obs.snapshot().counter("cpa.traces_absorbed"), 240);
        // The extended run's result equals a from-scratch 480-trace run.
        let fresh_dir = scratch_dir("extend-fresh");
        let fresh = run_streaming(&extended, &fresh_dir).unwrap();
        assert_eq!(second.result, fresh.result);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&fresh_dir);
    }

    #[test]
    fn off_grid_budget_extension_is_refused() {
        let dir = scratch_dir("offgrid");
        // 300 traces = 5 windows: the final commit group is truncated
        // (windows 4..5), so it is not a resume point for a larger
        // budget whose group 2 would span windows 4..6.
        let exp = small_exp(27);
        run_streaming(&exp, &dir).unwrap();
        let mut extended = exp;
        extended.base.traces = 480;
        match run_streaming(&extended, &dir).unwrap_err() {
            StreamingError::Incompatible(why) => {
                assert!(why.contains("commit"), "unhelpful error: {why}")
            }
            other => panic!("expected Incompatible, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
