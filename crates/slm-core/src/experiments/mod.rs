//! Experiment runners, one per paper figure (see the crate root for the
//! figure ↔ runner table).

mod arch_study;
mod audits;
mod cpa;
mod defense_matrix;
mod extensions;
mod fault_matrix;
mod parallel;
mod preliminary;
mod stealth_matrix;
mod streaming;
mod transport_study;

pub use arch_study::{architecture_study, ArchRow, ArchStudy};
pub use audits::{
    atpg_stimulus_study, floorplan_views, stealth_audit, timing_audit, AtpgStudy, FloorplanView,
    StealthAudit, TimingAudit, TimingVerdict,
};
pub use cpa::{
    aes_pilot_activity, run_cpa, run_cpa_recorded, CpaExperiment, CpaResult, SensorSource,
};
pub use defense_matrix::{
    defense_matrix, defense_matrix_recorded, DefenseArm, DefenseMatrix, DefenseMatrixExperiment,
    DetectorEval, DetectorReading, MatrixCell,
};
pub use extensions::{
    fence_study, full_key_recovery, masking_study, placement_study, run_cpa_with,
    run_cpa_with_recorded, tdc_dominates, tvla_study, FenceStudy, FullKeyResult, MaskingStudy,
    PlacementRow, TvlaResult,
};
pub use fault_matrix::{
    fault_matrix, fault_matrix_recorded, run_fault_campaign, run_fault_campaign_recorded,
    AggressorDetectorReading, FaultCampaign, FaultCampaignOutcome, FaultMatrix, FaultMatrixCell,
    FaultMatrixExperiment,
};
pub use parallel::{
    run_cpa_parallel, run_cpa_parallel_recorded, run_cpa_parallel_with,
    run_cpa_parallel_with_recorded, ParallelCpa,
};
pub use preliminary::{
    activity_study, bit_census, bit_variance, ro_response, ActivityStudy, CensusResult, RoResponse,
    VarianceResult,
};
pub use stealth_matrix::{
    stealth_matrix, MatrixRow, StealthMatrix, OVERCLOCK_MHZ, SYNTH_CRITICAL_NS,
};
pub use streaming::{
    run_streaming, run_streaming_crashing, run_streaming_recorded, run_streaming_with,
    run_streaming_with_recorded, CrashPlan, CrashSite, EarlyStop, StreamOutcome, StreamingCpa,
    StreamingError, StreamingResult,
};
pub use transport_study::{
    transport_fault_study, TransportFaultRow, TransportFaultStudy, TransportFaultStudyResult,
};
