//! The combined SCA/FI scenario matrix: every fault-injection
//! aggressor operating point re-run under every deployed
//! countermeasure, plus an evaluation of the defender's online
//! detector against each aggressor's duty-cycle signature.
//!
//! Where [`super::defense_matrix`] asks what the countermeasures buy
//! against the *passive* sensing attack, this matrix asks the active
//! question: can a malicious tenant's logic misuse push the shared PDN
//! hard enough to *fault* the victim — and does any deployed defense
//! stop the resulting DFA key recovery? Each cell runs a sharded fault
//! campaign ([`FaultCampaign`]) feeding correct/faulty ciphertext
//! pairs into [`DfaAttack`], and reports faults-per-1k-captures,
//! recovered key material, and the defender's alarm counts.
//!
//! Determinism discipline, same as every other campaign here: the
//! aggressor waveform is a pure function of the fabric tick (no RNG
//! lane to split), shards re-seed through [`FabricConfig::for_shard`],
//! and shard partials merge in shard order — the matrix is
//! bit-identical at any worker count.

use serde::{Deserialize, Serialize};
use slm_aes::soft;
use slm_cpa::{DfaAttack, DfaModel};
use slm_fabric::{
    AesActivity, AggressorSpec, BenignCircuit, DefenseConfig, DetectorConfig, FabricConfig,
    FabricError, MultiTenantFabric, ShardPlan,
};
use slm_obs::{MetricsFrame, Obs};

use super::defense_matrix::{arm_tag, DefenseArm, DetectorReading};

/// One sharded fault-injection campaign: capture `captures`
/// encryptions on the configured fabric, pair each faulted ciphertext
/// with its software golden, and accumulate DFA votes.
/// (Not serializable: it embeds the full [`FabricConfig`].)
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    /// The fabric under attack — aggressor and defenses included.
    pub config: FabricConfig,
    /// The DFA fault model analysing the pairs.
    pub model: DfaModel,
    /// Total encryptions to capture.
    pub captures: u64,
    /// Captures per shard; the layout depends only on this and the
    /// budget, never on `workers`.
    pub shard_captures: u64,
    /// Worker threads capturing shards (0 = machine parallelism).
    pub workers: usize,
}

impl FaultCampaign {
    /// The deterministic shard layout for this budget.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan::new(self.captures, self.shard_captures.max(1))
    }
}

/// The merged outcome of a fault campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCampaignOutcome {
    /// The merged DFA accumulator (votes, pair counts, candidates).
    pub dfa: DfaAttack,
    /// Encryptions captured.
    pub captures: u64,
    /// Encryptions whose ciphertext came back corrupted.
    pub faulted: u64,
    /// AES cycles that violated timing across the campaign.
    pub fault_cycles: u64,
    /// Deepest victim-rail voltage seen, volts.
    pub min_victim_v: f64,
    /// Defender detector windows that alarmed during the campaign
    /// (0 when no defense with a detector was deployed).
    pub alarm_windows: u64,
}

impl FaultCampaignOutcome {
    /// Faulted encryptions per thousand captures.
    pub fn faults_per_1k(&self) -> f64 {
        if self.captures == 0 {
            0.0
        } else {
            1e3 * self.faulted as f64 / self.captures as f64
        }
    }
}

/// One shard's partial: a DFA accumulator plus the telemetry slice it
/// observed. All fields merge associatively (sums, min).
struct ShardPartial {
    dfa: DfaAttack,
    captures: u64,
    faulted: u64,
    fault_cycles: u64,
    min_victim_v: f64,
    alarm_windows: u64,
    frame: MetricsFrame,
}

/// Runs a sharded fault campaign.
///
/// # Errors
///
/// Propagates fabric construction failures from any shard.
pub fn run_fault_campaign(exp: &FaultCampaign) -> Result<FaultCampaignOutcome, FabricError> {
    run_fault_campaign_recorded(exp, &Obs::null())
}

/// [`run_fault_campaign`] with an observability handle: each shard
/// records into a forked frame (`fault.captures`, `fault.pairs_*`
/// counters under a `fault.shard` span) folded back in shard order.
///
/// # Errors
///
/// Propagates fabric construction failures from any shard.
pub fn run_fault_campaign_recorded(
    exp: &FaultCampaign,
    obs: &Obs,
) -> Result<FaultCampaignOutcome, FabricError> {
    let shards = exp.plan().shards();
    let partials = slm_par::par_map(exp.workers, &shards, |spec| -> Result<_, FabricError> {
        let shard_obs = obs.fork();
        let shard_config = exp.config.for_shard(spec.index);
        let mut dfa = DfaAttack::new(exp.model);
        let mut faulted = 0u64;
        let mut fabric = {
            let _span = shard_obs.span("fault.shard");
            MultiTenantFabric::new(&shard_config)?
        };
        for _ in 0..spec.traces {
            let pt = fabric.random_plaintext();
            // Ciphertext-only capture: the DFA path needs no samples,
            // so the window is empty and the BRAM stays idle.
            let rec = fabric.encrypt_windowed(pt, 0..0, &[]);
            let golden = soft::encrypt(&shard_config.aes_key, &pt);
            if rec.ciphertext != golden {
                faulted += 1;
            }
            dfa.add_pair(&golden, &rec.ciphertext);
        }
        shard_obs.add("fault.captures", spec.traces);
        let (accepted, _, discarded) = dfa.pair_counts();
        shard_obs.add("fault.pairs_accepted", accepted);
        shard_obs.add("fault.pairs_discarded", discarded);
        let (fault_cycles, min_v) = match fabric.fault_telemetry() {
            Some(t) => (t.fault_cycles, t.min_victim_v),
            None => (0, fabric.victim_min_voltage()),
        };
        let alarm_windows = fabric.defense_telemetry().map_or(0, |t| t.alarm_windows);
        Ok(ShardPartial {
            dfa,
            captures: spec.traces,
            faulted,
            fault_cycles,
            min_victim_v: min_v,
            alarm_windows,
            frame: shard_obs.snapshot(),
        })
    });

    let mut merged: Option<FaultCampaignOutcome> = None;
    for partial in partials {
        let p = partial?;
        obs.absorb(&p.frame);
        match &mut merged {
            None => {
                merged = Some(FaultCampaignOutcome {
                    dfa: p.dfa,
                    captures: p.captures,
                    faulted: p.faulted,
                    fault_cycles: p.fault_cycles,
                    min_victim_v: p.min_victim_v,
                    alarm_windows: p.alarm_windows,
                });
            }
            Some(out) => {
                out.dfa
                    .try_merge(&p.dfa)
                    .expect("shards share one fault model");
                out.captures += p.captures;
                out.faulted += p.faulted;
                out.fault_cycles += p.fault_cycles;
                out.min_victim_v = out.min_victim_v.min(p.min_victim_v);
                out.alarm_windows += p.alarm_windows;
            }
        }
    }
    Ok(merged.unwrap_or_else(|| FaultCampaignOutcome {
        dfa: DfaAttack::new(exp.model),
        captures: 0,
        faulted: 0,
        fault_cycles: 0,
        min_victim_v: exp.config.pdn.v_nominal,
        alarm_windows: 0,
    }))
}

/// Parameters of a full aggressor-vs-defense matrix run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultMatrixExperiment {
    /// The benign circuit sharing the fabric.
    pub circuit: BenignCircuit,
    /// Aggressor operating points, one matrix row each (`None` = no
    /// aggressor, the fault-free control row).
    pub aggressors: Vec<Option<AggressorSpec>>,
    /// Defense arms, one matrix column each.
    pub arms: Vec<DefenseArm>,
    /// The DFA fault model every cell analyses under.
    pub model: DfaModel,
    /// Captures per cell.
    pub captures: u64,
    /// Captures per shard within a cell.
    pub shard_captures: u64,
    /// Detector operating point for defended cells and the per-row
    /// detector evaluation.
    pub detector: DetectorConfig,
    /// Measure-edge samples per detector-evaluation run.
    pub detector_samples: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Worker threads for the cell fan-out (0 = machine parallelism).
    pub workers: usize,
}

impl FaultMatrixExperiment {
    /// The standard sweep: no aggressor, a weak stealthy burst (below
    /// the fault threshold), the calibrated stealthy burst, and the
    /// blatant tick-rate aggressor — against no defense, the LDO, the
    /// PRNG fence, the adaptive fence, and clock jitter.
    pub fn standard(seed: u64) -> Self {
        FaultMatrixExperiment {
            circuit: BenignCircuit::DualC6288,
            aggressors: vec![
                None,
                Some(AggressorSpec::stealthy(0.6)),
                Some(AggressorSpec::stealthy(3.0)),
                Some(AggressorSpec::tick_rate(3.0)),
            ],
            arms: vec![
                DefenseArm::Undefended,
                DefenseArm::Ldo(0.25),
                DefenseArm::PrngFence(1.5),
                DefenseArm::AdaptiveFence(1.5),
                DefenseArm::ClockJitter(8),
            ],
            model: DfaModel::SingleByte { max_fault_bits: 2 },
            captures: 2_000,
            shard_captures: 250,
            detector: DetectorConfig {
                window_ticks: 4098, // even and divisible by 6
                alarm_threshold: 0.05,
            },
            detector_samples: 8200,
            seed,
            workers: 0,
        }
    }
}

/// One cell of the matrix: the fault campaign's outcome under one
/// (aggressor, defense) pairing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultMatrixCell {
    /// The aggressor row.
    pub aggressor: Option<AggressorSpec>,
    /// The defense column.
    pub arm: DefenseArm,
    /// Faulted encryptions per thousand captures.
    pub faults_per_1k: f64,
    /// DFA pairs accepted / discarded by the avalanche filter.
    pub pairs_accepted: u64,
    /// Pairs rejected as avalanche contamination.
    pub pairs_discarded: u64,
    /// Last-round key bytes unambiguously recovered.
    pub recovered_bytes: usize,
    /// The recovered AES master key, when all 16 bytes resolved.
    pub recovered_key: Option<[u8; 16]>,
    /// Deepest victim-rail voltage seen, volts.
    pub min_victim_v: f64,
    /// Defender detector windows that alarmed during the campaign.
    pub alarm_windows: u64,
}

impl FaultMatrixCell {
    /// Whether the attack in this cell succeeded outright: the full
    /// master key fell out of the DFA.
    pub fn key_recovered(&self) -> bool {
        self.recovered_key.is_some()
    }
}

/// Detector behaviour against one aggressor operating point, measured
/// on a monitor-only fabric (no fence, no LDO — just the alarm plane).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggressorDetectorReading {
    /// The aggressor row this reading watched.
    pub aggressor: Option<AggressorSpec>,
    /// Alarm counts over the observation span.
    pub reading: DetectorReading,
}

impl AggressorDetectorReading {
    /// Whether the monitoring plane flagged this operating point.
    pub fn detected(&self) -> bool {
        self.reading.alarm_windows > 0
    }
}

/// The full combined SCA/FI matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultMatrix {
    /// Cells in row-major order: for each aggressor, every arm.
    pub cells: Vec<FaultMatrixCell>,
    /// Detector reading per aggressor row, in row order.
    pub detector: Vec<AggressorDetectorReading>,
}

impl FaultMatrix {
    /// The cell for an (aggressor, arm) pairing, if it ran.
    pub fn cell(
        &self,
        aggressor: Option<AggressorSpec>,
        arm: &DefenseArm,
    ) -> Option<&FaultMatrixCell> {
        self.cells
            .iter()
            .find(|c| c.aggressor == aggressor && c.arm == *arm)
    }

    /// The detector reading for an aggressor row, if it ran.
    pub fn detector_for(
        &self,
        aggressor: Option<AggressorSpec>,
    ) -> Option<&AggressorDetectorReading> {
        self.detector.iter().find(|d| d.aggressor == aggressor)
    }
}

/// A stable per-row seed lane: 0 for the aggressor-free control row,
/// the content-derived spec tag otherwise.
fn aggressor_tag(aggressor: &Option<AggressorSpec>) -> u64 {
    aggressor.as_ref().map_or(0, AggressorSpec::tag)
}

/// Runs the aggressor-vs-defense fault matrix.
///
/// # Errors
///
/// Propagates fabric construction failures from any cell.
pub fn fault_matrix(exp: &FaultMatrixExperiment) -> Result<FaultMatrix, FabricError> {
    fault_matrix_recorded(exp, &Obs::null())
}

/// [`fault_matrix`] with an observability handle: each cell runs under
/// a `fault.cell` span in a forked recorder, frames fold back in
/// row-major cell order, and the detector sweep records per-row alarm
/// counters — merged metrics are worker-count invariant.
///
/// # Errors
///
/// Propagates fabric construction failures from any cell.
pub fn fault_matrix_recorded(
    exp: &FaultMatrixExperiment,
    obs: &Obs,
) -> Result<FaultMatrix, FabricError> {
    let tasks: Vec<(Option<AggressorSpec>, DefenseArm)> = exp
        .aggressors
        .iter()
        .flat_map(|agg| exp.arms.iter().map(move |arm| (*agg, *arm)))
        .collect();

    let cells: Vec<Result<(FaultMatrixCell, MetricsFrame), FabricError>> =
        slm_par::par_map(exp.workers, &tasks, |(aggressor, arm)| {
            let cell_obs = if obs.enabled() {
                obs.fork()
            } else {
                Obs::memory()
            };
            // Each cell gets its own seed lane so inserting a row or
            // column never re-seeds its neighbours.
            let lane = aggressor_tag(aggressor) ^ arm_tag(arm);
            let seed = slm_par::mix_seed(exp.seed, lane);
            let config = FabricConfig {
                benign: exp.circuit,
                seed,
                aggressor: *aggressor,
                defense: arm.deployment(exp.detector, slm_par::mix_seed(seed, 0xdef)),
                ..FabricConfig::default()
            };
            let campaign = FaultCampaign {
                config,
                model: exp.model,
                captures: exp.captures,
                shard_captures: exp.shard_captures,
                // Shards run serially inside the cell; the matrix
                // parallelism is the cell fan-out.
                workers: 1,
            };
            let outcome = {
                let _span = cell_obs.span("fault.cell");
                run_fault_campaign_recorded(&campaign, &cell_obs)?
            };
            cell_obs.incr("fault.cells");
            let (accepted, _, discarded) = outcome.dfa.pair_counts();
            let cell = FaultMatrixCell {
                aggressor: *aggressor,
                arm: *arm,
                faults_per_1k: outcome.faults_per_1k(),
                pairs_accepted: accepted,
                pairs_discarded: discarded,
                recovered_bytes: outcome.dfa.recovered_bytes(),
                recovered_key: outcome.dfa.recovered_master_key(),
                min_victim_v: outcome.min_victim_v,
                alarm_windows: outcome.alarm_windows,
            };
            Ok((cell, cell_obs.snapshot()))
        });

    let mut out = Vec::with_capacity(tasks.len());
    for cell in cells {
        let (cell, frame) = cell?;
        obs.absorb(&frame);
        out.push(cell);
    }

    let detector = {
        let _span = obs.span("fault.detector_eval");
        evaluate_detector(exp)?
    };
    if obs.enabled() {
        for row in &detector {
            if row.detected() {
                obs.incr("fault.detector_hits");
            }
        }
    }
    Ok(FaultMatrix {
        cells: out,
        detector,
    })
}

/// Runs the defender's detector against each aggressor row on a
/// monitor-only fabric: no fence, no LDO, balanced tenant stimulus —
/// the only anomalous signal is the aggressor's duty cycle reaching
/// the victim rail through the shared PDN.
fn evaluate_detector(
    exp: &FaultMatrixExperiment,
) -> Result<Vec<AggressorDetectorReading>, FabricError> {
    exp.aggressors
        .iter()
        .map(|aggressor| {
            let lane = 0xde7 ^ aggressor_tag(aggressor);
            let config = FabricConfig {
                benign: exp.circuit,
                seed: exp.seed,
                stimulus_alternation: 0.0,
                aggressor: *aggressor,
                defense: Some(DefenseConfig {
                    detector: exp.detector,
                    ..DefenseConfig::monitor_only(slm_par::mix_seed(exp.seed, lane))
                }),
                ..FabricConfig::default()
            };
            let mut fabric = MultiTenantFabric::new(&config)?;
            fabric.run_activity(None, AesActivity::Continuous, exp.detector_samples);
            let t = fabric.defense_telemetry().expect("defense deployed");
            Ok(AggressorDetectorReading {
                aggressor: *aggressor,
                reading: DetectorReading {
                    windows: t.windows,
                    alarm_windows: t.alarm_windows,
                    alarm_events: t.alarm_events,
                    max_score: t.max_score,
                },
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_exp() -> FaultMatrixExperiment {
        FaultMatrixExperiment {
            captures: 300,
            shard_captures: 75,
            ..FaultMatrixExperiment::standard(11)
        }
    }

    #[test]
    fn campaign_counts_are_consistent() {
        let exp = quick_exp();
        let campaign = FaultCampaign {
            config: FabricConfig {
                benign: exp.circuit,
                seed: 3,
                aggressor: Some(AggressorSpec::stealthy(3.0)),
                ..FabricConfig::default()
            },
            model: exp.model,
            captures: 200,
            shard_captures: 50,
            workers: 1,
        };
        let out = run_fault_campaign(&campaign).unwrap();
        assert_eq!(out.captures, 200);
        let (accepted, unfaulted, discarded) = out.dfa.pair_counts();
        assert_eq!(accepted + unfaulted + discarded, 200);
        assert_eq!(out.faulted, accepted + discarded);
        assert!(out.faulted > 0, "calibrated aggressor must fault");
        assert!(out.min_victim_v < 0.953);
    }

    #[test]
    fn aggressor_free_campaign_never_faults() {
        let exp = quick_exp();
        let campaign = FaultCampaign {
            config: FabricConfig {
                benign: exp.circuit,
                seed: 3,
                ..FabricConfig::default()
            },
            model: exp.model,
            captures: 60,
            shard_captures: 20,
            workers: 1,
        };
        let out = run_fault_campaign(&campaign).unwrap();
        assert_eq!(out.faulted, 0);
        assert_eq!(out.fault_cycles, 0);
        assert_eq!(out.dfa.recovered_bytes(), 0);
    }

    #[test]
    fn matrix_geometry_and_control_rows() {
        let mut exp = quick_exp();
        exp.aggressors = vec![None, Some(AggressorSpec::stealthy(3.0))];
        exp.arms = vec![DefenseArm::Undefended, DefenseArm::Ldo(0.25)];
        exp.captures = 150;
        exp.shard_captures = 50;
        let matrix = fault_matrix(&exp).unwrap();
        assert_eq!(matrix.cells.len(), 4);
        assert_eq!(matrix.detector.len(), 2);
        // The aggressor-free row is fault-free everywhere.
        for arm in &exp.arms {
            let cell = matrix.cell(None, arm).unwrap();
            assert_eq!(cell.faults_per_1k, 0.0);
            assert_eq!(cell.recovered_bytes, 0);
        }
        // The undefended aggressor cell faults; the LDO cell does not.
        let hot = matrix
            .cell(exp.aggressors[1], &DefenseArm::Undefended)
            .unwrap();
        assert!(hot.faults_per_1k > 0.0);
        let cold = matrix
            .cell(exp.aggressors[1], &DefenseArm::Ldo(0.25))
            .unwrap();
        assert_eq!(cold.faults_per_1k, 0.0, "LDO must suppress faults");
    }
}
