//! Sharded parallel CPA campaigns.
//!
//! The serial [`run_cpa`](super::cpa::run_cpa) captures every trace on
//! one fabric whose electrical state threads through the whole
//! campaign; that stream cannot be split without changing the traces.
//! The parallel runner instead splits the *budget* into deterministic
//! shards ([`ShardPlan`]): each shard is an independent capture session
//! on its own fabric, re-seeded per shard ([`FabricConfig::for_shard`])
//! so shard `i` produces the same traces no matter which worker runs
//! it or how many workers exist. Shard partials are mergeable CPA
//! accumulators ([`slm_cpa::CpaAttack::merge`]); folding them in shard
//! order makes the whole campaign — progress curves, MTD, recovered
//! byte — bit-identical at any worker count. The serial reference for
//! a parallel campaign is therefore `workers = 1` over the same plan,
//! not the single-fabric [`run_cpa`](super::cpa::run_cpa) stream.
//!
//! The pilot phase (bits of interest, endpoint selection) is not
//! sharded: it runs once on the base configuration, exactly as the
//! serial runner's pilot does, and every shard inherits its decisions.

use super::cpa::{absorb_record, assemble_result, pilot_setup, CpaExperiment, CpaResult};
use serde::{Deserialize, Serialize};
use slm_cpa::{leader_margin, CpaAttack, ProgressPoint};
use slm_fabric::{FabricConfig, FabricError, MultiTenantFabric, ShardPlan};
use slm_obs::{MetricsFrame, Obs};

/// A sharded, multi-threaded CPA campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelCpa {
    /// The campaign parameters (budget, source, seed, checkpoints).
    pub base: CpaExperiment,
    /// Traces per shard. The shard layout depends only on this and the
    /// budget — never on `workers` — so changing the thread count can
    /// never change the result. Smaller shards balance better across
    /// workers; larger shards amortize fabric construction.
    pub shard_traces: u64,
    /// Worker threads capturing shards (0 = machine parallelism).
    pub workers: usize,
}

impl ParallelCpa {
    /// Wraps a campaign with a shard size of one sixteenth of the
    /// budget (at least 1) — enough shards to keep 8 workers busy with
    /// dynamic balancing — and machine parallelism.
    pub fn new(base: CpaExperiment) -> Self {
        ParallelCpa {
            base,
            shard_traces: (base.traces / 16).max(1),
            workers: 0,
        }
    }

    /// Sets the worker count (0 = machine parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The shard layout this campaign will execute.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan::new(self.base.traces, self.shard_traces)
    }
}

/// Per-shard capture output: accumulators snapshotted at every global
/// checkpoint that falls inside the shard, plus the finished partials
/// and the shard's private metrics frame (folded in shard order, so
/// merged metrics are worker-count invariant too).
struct ShardPartial {
    snapshots: Vec<(u64, Vec<CpaAttack>)>,
    attacks: Vec<CpaAttack>,
    frame: MetricsFrame,
}

/// Runs a sharded CPA campaign on a worker pool.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn run_cpa_parallel(exp: &ParallelCpa) -> Result<CpaResult, FabricError> {
    run_cpa_parallel_inner(exp, |_| {}, &Obs::null())
}

/// [`run_cpa_parallel`] with an observability handle. Each shard
/// records into a forked sibling recorder; the shard frames are folded
/// back in shard index order, so the merged metrics — like the
/// campaign result itself — are bit-identical at any worker count.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn run_cpa_parallel_recorded(exp: &ParallelCpa, obs: &Obs) -> Result<CpaResult, FabricError> {
    run_cpa_parallel_inner(exp, |_| {}, obs)
}

/// [`run_cpa_parallel`] with a fabric-configuration hook applied once
/// to the base configuration before the pilot and before shard
/// re-seeding — the parallel analogue of
/// [`run_cpa_with`](super::extensions::run_cpa_with).
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn run_cpa_parallel_with(
    exp: &ParallelCpa,
    tweak: impl FnOnce(&mut FabricConfig),
) -> Result<CpaResult, FabricError> {
    run_cpa_parallel_inner(exp, tweak, &Obs::null())
}

/// [`run_cpa_parallel_with`] with an observability handle — the
/// tweaked, sharded campaign with shard-order metrics folding. Used by
/// defended campaign drivers that want both a defense hook and
/// telemetry.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn run_cpa_parallel_with_recorded(
    exp: &ParallelCpa,
    tweak: impl FnOnce(&mut FabricConfig),
    obs: &Obs,
) -> Result<CpaResult, FabricError> {
    run_cpa_parallel_inner(exp, tweak, obs)
}

fn run_cpa_parallel_inner(
    exp: &ParallelCpa,
    tweak: impl FnOnce(&mut FabricConfig),
    obs: &Obs,
) -> Result<CpaResult, FabricError> {
    let base = &exp.base;
    let mut config = FabricConfig {
        benign: base.circuit,
        seed: base.seed,
        ..FabricConfig::default()
    };
    tweak(&mut config);
    // The pilot is shared: one run on the base config decides endpoint
    // selection and post-processing for every shard.
    let (_pilot_fabric, setup) = {
        let _pilot_span = obs.span("cpa.pilot");
        pilot_setup(base, &config)?
    };

    let plan = exp.plan();
    let checkpoint_every = (base.traces / base.checkpoints.max(1) as u64).max(1);
    let shards = plan.shards();
    let partials: Vec<Result<ShardPartial, FabricError>> =
        slm_par::par_map(exp.workers, &shards, |spec| {
            // Each shard records into a private sibling recorder; its
            // frame travels with the partial and is folded in shard
            // order below, never racing with other shards.
            let shard_obs = obs.fork();
            let shard_config = config.for_shard(spec.index);
            let mut attacks: Vec<CpaAttack> = (0..setup.single_bit_slots)
                .map(|_| CpaAttack::new(setup.model, setup.points))
                .collect();
            let mut snapshots: Vec<(u64, Vec<CpaAttack>)> = Vec::new();
            let mut point_buf = vec![0.0f64; setup.points];
            let fabric = {
                let _span = shard_obs.span("cpa.shard");
                let mut fabric = MultiTenantFabric::new(&shard_config)?;
                for t in 1..=spec.traces {
                    let pt = fabric.random_plaintext();
                    let rec = fabric.encrypt_windowed(pt, setup.window.clone(), &setup.endpoints);
                    absorb_record(
                        base.source,
                        &setup,
                        &rec,
                        &mut attacks,
                        &mut point_buf,
                        &shard_obs,
                    );
                    // A progress checkpoint is a *global* trace count;
                    // the shard holding it snapshots its local state
                    // there, and the merge below completes the prefix.
                    let global = spec.start + t;
                    if global % checkpoint_every == 0 || global == plan.total {
                        snapshots.push((global, attacks.clone()));
                    }
                }
                fabric
            };
            if shard_obs.enabled() {
                let t = fabric.pdn_telemetry();
                shard_obs.gauge("pdn.v_min", t.v_min);
                shard_obs.gauge("pdn.v_max", t.v_max);
                shard_obs.gauge("pdn.settled_streak", t.settled_streak as f64);
                if let Some(d) = fabric.defense_telemetry() {
                    shard_obs.gauge("defense.injected_max_a", d.injected_max_a);
                    shard_obs.gauge("defense.injected_mean_a", d.injected_mean_a());
                    shard_obs.gauge("defense.detector_max_score", d.max_score);
                    shard_obs.add("defense.windows", d.windows);
                    shard_obs.add("defense.alarm_windows", d.alarm_windows);
                    shard_obs.add("defense.alarm_events", d.alarm_events);
                    shard_obs.add("defense.jitter_cycles", d.jitter_cycles);
                }
            }
            Ok(ShardPartial {
                snapshots,
                attacks,
                frame: shard_obs.snapshot(),
            })
        });

    // Fold shards in index order. When shard i holds a checkpoint at
    // global trace T, the campaign state at T is (all shards < i,
    // fully absorbed) ⊕ (shard i's snapshot at T): a prefix-merge.
    // Both operands depend only on the plan, so the progress curve is
    // worker-count invariant.
    let mut merged: Vec<CpaAttack> = (0..setup.single_bit_slots)
        .map(|_| CpaAttack::new(setup.model, setup.points))
        .collect();
    let mut progress_per: Vec<Vec<ProgressPoint>> =
        vec![Vec::with_capacity(base.checkpoints); setup.single_bit_slots];
    for partial in partials {
        let partial = partial?;
        obs.absorb(&partial.frame);
        for (global, snapshot) in &partial.snapshots {
            for (slot, snap) in snapshot.iter().enumerate() {
                let mut at_checkpoint = merged[slot].clone();
                at_checkpoint.merge(snap);
                let peaks = at_checkpoint.peak_correlations_par(exp.workers).to_vec();
                if slot == 0 {
                    obs.observe("cpa.checkpoint_margin", leader_margin(&peaks));
                }
                progress_per[slot].push(ProgressPoint {
                    traces: *global,
                    peak_corr: peaks,
                });
            }
        }
        for (acc, part) in merged.iter_mut().zip(&partial.attacks) {
            acc.merge_recorded(part, obs);
        }
    }

    Ok(assemble_result(
        base,
        &setup,
        &merged,
        progress_per,
        exp.workers,
        base.traces,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SensorSource;
    use slm_fabric::BenignCircuit;

    #[test]
    fn parallel_campaign_is_worker_count_invariant() {
        // The whole CpaResult — progress curve, MTD, peaks — must be
        // bit-identical (PartialEq on every f64) at any worker count.
        let run = |workers: usize| {
            let exp = ParallelCpa {
                base: CpaExperiment {
                    circuit: BenignCircuit::DualC6288,
                    source: SensorSource::TdcAll,
                    traces: 600,
                    checkpoints: 3,
                    pilot_traces: 40,
                    seed: 77,
                },
                shard_traces: 175,
                workers,
            };
            run_cpa_parallel(&exp).unwrap()
        };
        let serial = run(1);
        let wide = run(3);
        assert_eq!(serial, wide);
        assert_eq!(serial.traces, 600);
        // 600/3 = 200-trace checkpoints plus the final partial shard
        // boundary at 600 (= a checkpoint) ⇒ 3 progress points.
        assert_eq!(serial.progress.len(), 3);
        assert_eq!(serial.progress.last().unwrap().traces, 600);
    }

    #[test]
    fn parallel_tdc_campaign_recovers_key() {
        let exp = ParallelCpa {
            base: CpaExperiment {
                circuit: BenignCircuit::DualC6288,
                source: SensorSource::TdcAll,
                traces: 4_000,
                checkpoints: 8,
                pilot_traces: 100,
                seed: 7,
            },
            shard_traces: 500,
            workers: 0,
        };
        let r = run_cpa_parallel(&exp).unwrap();
        assert_eq!(r.recovered_key_byte, Some(r.correct_key_byte));
        let mtd = r.mtd.expect("TDC should disclose the key");
        assert!(mtd <= 4_000, "MTD {mtd} should be within budget");
        assert_eq!(r.final_peaks.len(), 256);
    }

    #[test]
    fn recorded_parallel_metrics_are_worker_count_invariant() {
        let run = |workers: usize| {
            let exp = ParallelCpa {
                base: CpaExperiment {
                    circuit: BenignCircuit::DualC6288,
                    source: SensorSource::TdcAll,
                    traces: 300,
                    checkpoints: 3,
                    pilot_traces: 20,
                    seed: 13,
                },
                shard_traces: 75,
                workers,
            };
            let obs = Obs::memory();
            let result = run_cpa_parallel_recorded(&exp, &obs).unwrap();
            (result, obs.snapshot())
        };
        let (r1, f1) = run(1);
        let (r4, f4) = run(4);
        assert_eq!(r1, r4);
        // Wall-clock span durations differ; everything else — counters,
        // gauges, histograms, span counts — must be bit-identical.
        assert_eq!(f1.deterministic(), f4.deterministic());
        assert_eq!(f1.counter("cpa.traces_absorbed"), 300);
        assert_eq!(f1.spans["cpa.shard"].count, 4);
        assert_eq!(f1.spans["cpa.pilot"].count, 1);
        assert_eq!(f1.counter("cpa.merge_events"), 4);
        assert_eq!(f1.counter("cpa.traces_merged"), 300);
        assert_eq!(f1.histograms["cpa.checkpoint_margin"].count, 3);
    }

    #[test]
    fn default_shard_size_covers_budget() {
        let base = CpaExperiment {
            circuit: BenignCircuit::Alu192,
            source: SensorSource::TdcAll,
            traces: 1000,
            checkpoints: 4,
            pilot_traces: 10,
            seed: 1,
        };
        let exp = ParallelCpa::new(base).with_workers(2);
        assert_eq!(exp.shard_traces, 62);
        let plan = exp.plan();
        assert_eq!(plan.total, 1000);
        assert_eq!(plan.shards().iter().map(|s| s.traces).sum::<u64>(), 1000);
    }
}
