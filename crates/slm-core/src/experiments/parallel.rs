//! Sharded parallel CPA campaigns.
//!
//! The serial [`run_cpa`](super::cpa::run_cpa) captures every trace on
//! one fabric whose electrical state threads through the whole
//! campaign; that stream cannot be split without changing the traces.
//! The parallel runner instead splits the *budget* into deterministic
//! shards ([`ShardPlan`]): each shard is an independent capture session
//! on its own fabric, re-seeded per shard ([`FabricConfig::for_shard`])
//! so shard `i` produces the same traces no matter which worker runs
//! it or how many workers exist. Shard partials are mergeable CPA
//! accumulators ([`slm_cpa::CpaAttack::merge`]); folding them in shard
//! order makes the whole campaign — progress curves, MTD, recovered
//! byte — bit-identical at any worker count. The serial reference for
//! a parallel campaign is therefore `workers = 1` over the same plan,
//! not the single-fabric [`run_cpa`](super::cpa::run_cpa) stream.
//!
//! The pilot phase (bits of interest, endpoint selection) is not
//! sharded: it runs once on the base configuration, exactly as the
//! serial runner's pilot does, and every shard inherits its decisions.

use super::cpa::{
    absorb_batch, assemble_result, geometry_setup, pilot_independent, pilot_setup, CampaignSetup,
    CpaExperiment, CpaResult, ABSORB_BATCH,
};
use serde::{Deserialize, Serialize};
use slm_cpa::{leader_margin, CpaAttack, ProgressPoint, TraceBatch};
use slm_fabric::{FabricConfig, FabricError, MultiTenantFabric, ShardPlan};
use slm_obs::{MetricsFrame, Obs};
use slm_par::ShardSpec;

/// A sharded, multi-threaded CPA campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelCpa {
    /// The campaign parameters (budget, source, seed, checkpoints).
    pub base: CpaExperiment,
    /// Traces per shard. The shard layout depends only on this and the
    /// budget — never on `workers` — so changing the thread count can
    /// never change the result. Smaller shards balance better across
    /// workers; larger shards amortize fabric construction.
    pub shard_traces: u64,
    /// Worker threads capturing shards (0 = machine parallelism).
    pub workers: usize,
}

impl ParallelCpa {
    /// Wraps a campaign with a shard size of one sixteenth of the
    /// budget (at least 1) — enough shards to keep 8 workers busy with
    /// dynamic balancing — and machine parallelism. The size rounds
    /// *up* (`div_ceil`), so the plan never grows a seventeenth,
    /// degenerately small trailing shard the way floor division did for
    /// budgets that aren't multiples of 16.
    pub fn new(base: CpaExperiment) -> Self {
        ParallelCpa {
            base,
            shard_traces: base.traces.div_ceil(16).max(1),
            workers: 0,
        }
    }

    /// Sets the worker count (0 = machine parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The shard layout this campaign will execute.
    pub fn plan(&self) -> ShardPlan {
        ShardPlan::new(self.base.traces, self.shard_traces)
    }
}

/// Per-shard capture output: accumulators snapshotted at every global
/// checkpoint that falls inside the shard, plus the finished partials
/// and the shard's private metrics frame (folded in shard order, so
/// merged metrics are worker-count invariant too).
struct ShardPartial {
    snapshots: Vec<(u64, Vec<CpaAttack>)>,
    attacks: Vec<CpaAttack>,
    frame: MetricsFrame,
}

/// Runs a sharded CPA campaign on a worker pool.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn run_cpa_parallel(exp: &ParallelCpa) -> Result<CpaResult, FabricError> {
    run_cpa_parallel_inner(exp, |_| {}, &Obs::null())
}

/// [`run_cpa_parallel`] with an observability handle. Each shard
/// records into a forked sibling recorder; the shard frames are folded
/// back in shard index order, so the merged metrics — like the
/// campaign result itself — are bit-identical at any worker count.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn run_cpa_parallel_recorded(exp: &ParallelCpa, obs: &Obs) -> Result<CpaResult, FabricError> {
    run_cpa_parallel_inner(exp, |_| {}, obs)
}

/// [`run_cpa_parallel`] with a fabric-configuration hook applied once
/// to the base configuration before the pilot and before shard
/// re-seeding — the parallel analogue of
/// [`run_cpa_with`](super::extensions::run_cpa_with).
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn run_cpa_parallel_with(
    exp: &ParallelCpa,
    tweak: impl FnOnce(&mut FabricConfig),
) -> Result<CpaResult, FabricError> {
    run_cpa_parallel_inner(exp, tweak, &Obs::null())
}

/// [`run_cpa_parallel_with`] with an observability handle — the
/// tweaked, sharded campaign with shard-order metrics folding. Used by
/// defended campaign drivers that want both a defense hook and
/// telemetry.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn run_cpa_parallel_with_recorded(
    exp: &ParallelCpa,
    tweak: impl FnOnce(&mut FabricConfig),
    obs: &Obs,
) -> Result<CpaResult, FabricError> {
    run_cpa_parallel_inner(exp, tweak, obs)
}

/// Captures one shard: a chunked, batch-absorbed campaign loop on the
/// shard's private fabric, snapshotting at every global checkpoint that
/// falls inside the shard. Records into a private fork of `obs`; the
/// frame travels with the partial and is folded in shard order by the
/// caller.
fn capture_shard(
    base: &CpaExperiment,
    setup: &CampaignSetup,
    config: &FabricConfig,
    spec: &ShardSpec,
    checkpoint_every: u64,
    total: u64,
    obs: &Obs,
) -> Result<ShardPartial, FabricError> {
    let shard_obs = obs.fork();
    let shard_config = config.for_shard(spec.index);
    let mut attacks: Vec<CpaAttack> = (0..setup.single_bit_slots)
        .map(|_| CpaAttack::new(setup.model, setup.points))
        .collect();
    let mut snapshots: Vec<(u64, Vec<CpaAttack>)> = Vec::new();
    let mut point_buf = vec![0.0f64; setup.points];
    let mut staging: Vec<TraceBatch> = (0..setup.single_bit_slots)
        .map(|_| TraceBatch::with_capacity(setup.points, ABSORB_BATCH as usize))
        .collect();
    let mut recs: Vec<slm_fabric::CaptureRecord> = Vec::with_capacity(ABSORB_BATCH as usize);
    let fabric = {
        let _span = shard_obs.span("cpa.shard");
        let mut fabric = {
            let _build_span = shard_obs.span("cpa.build");
            MultiTenantFabric::new(&shard_config)?
        };
        // Chunked capture, same contract as the serial loop: chunks
        // never cross a global checkpoint boundary, and batch
        // absorption is bit-identical to per-trace absorption.
        let mut t = 0u64;
        while t < spec.traces {
            let global = spec.start + t;
            let boundary = (global / checkpoint_every + 1) * checkpoint_every - spec.start;
            let stop = boundary.min(spec.traces).min(t + ABSORB_BATCH);
            recs.clear();
            {
                let _capture_span = shard_obs.span("cpa.capture");
                for _ in t..stop {
                    let pt = fabric.random_plaintext();
                    recs.push(fabric.encrypt_windowed(pt, setup.window.clone(), &setup.endpoints));
                }
            }
            {
                let _absorb_span = shard_obs.span("cpa.absorb");
                absorb_batch(
                    base.source,
                    setup,
                    &recs,
                    &mut attacks,
                    &mut staging,
                    &mut point_buf,
                    &shard_obs,
                );
            }
            t = stop;
            // A progress checkpoint is a *global* trace count; the
            // shard holding it snapshots its local state there, and
            // the caller's merge completes the prefix.
            let global = spec.start + t;
            if global % checkpoint_every == 0 || global == total {
                snapshots.push((global, attacks.clone()));
            }
        }
        fabric
    };
    if shard_obs.enabled() {
        let t = fabric.pdn_telemetry();
        shard_obs.gauge("pdn.v_min", t.v_min);
        shard_obs.gauge("pdn.v_max", t.v_max);
        shard_obs.gauge("pdn.settled_streak", t.settled_streak as f64);
        if let Some(d) = fabric.defense_telemetry() {
            shard_obs.gauge("defense.injected_max_a", d.injected_max_a);
            shard_obs.gauge("defense.injected_mean_a", d.injected_mean_a());
            shard_obs.gauge("defense.detector_max_score", d.max_score);
            shard_obs.add("defense.windows", d.windows);
            shard_obs.add("defense.alarm_windows", d.alarm_windows);
            shard_obs.add("defense.alarm_events", d.alarm_events);
            shard_obs.add("defense.jitter_cycles", d.jitter_cycles);
        }
    }
    Ok(ShardPartial {
        snapshots,
        attacks,
        frame: shard_obs.snapshot(),
    })
}

fn run_cpa_parallel_inner(
    exp: &ParallelCpa,
    tweak: impl FnOnce(&mut FabricConfig),
    obs: &Obs,
) -> Result<CpaResult, FabricError> {
    let base = &exp.base;
    let mut config = FabricConfig {
        benign: base.circuit,
        seed: base.seed,
        ..FabricConfig::default()
    };
    tweak(&mut config);

    let plan = exp.plan();
    let checkpoint_every = (base.traces / base.checkpoints.max(1) as u64).max(1);
    let shards = plan.shards();

    // The pilot is shared: one run on the base config decides endpoint
    // selection and post-processing for every shard. When the source
    // doesn't depend on pilot statistics, the shards start from the
    // config-derived geometry right away and the pilot runs
    // concurrently as one more task on the pool — it no longer
    // serializes in front of the shards. Both arms make identical
    // capture decisions, so the result is the same either way.
    let (setup, partials): (CampaignSetup, Vec<Result<ShardPartial, FabricError>>) =
        if pilot_independent(base.source) {
            enum Out {
                Pilot(Box<CampaignSetup>, MetricsFrame),
                Shard(ShardPartial),
            }
            let geometry = geometry_setup(base, &config)?;
            let tasks: Vec<Option<&ShardSpec>> = std::iter::once(None)
                .chain(shards.iter().map(Some))
                .collect();
            let outs: Vec<Result<Out, FabricError>> =
                slm_par::par_map(exp.workers, &tasks, |task| match task {
                    None => {
                        let pilot_obs = obs.fork();
                        let (_pilot_fabric, full) = {
                            let _pilot_span = pilot_obs.span("cpa.pilot");
                            pilot_setup(base, &config)?
                        };
                        Ok(Out::Pilot(Box::new(full), pilot_obs.snapshot()))
                    }
                    Some(spec) => capture_shard(
                        base,
                        &geometry,
                        &config,
                        spec,
                        checkpoint_every,
                        plan.total,
                        obs,
                    )
                    .map(Out::Shard),
                });
            let mut outs = outs.into_iter();
            let (full_setup, pilot_frame) = match outs.next().expect("task 0 is the pilot")? {
                Out::Pilot(setup, frame) => (*setup, frame),
                Out::Shard(_) => unreachable!("task 0 is the pilot"),
            };
            // Pilot metrics fold before shard metrics, matching the
            // serial-pilot arm's recording order.
            obs.absorb(&pilot_frame);
            let partials = outs
                .map(|o| {
                    o.map(|o| match o {
                        Out::Shard(p) => p,
                        Out::Pilot(..) => unreachable!("only task 0 is the pilot"),
                    })
                })
                .collect();
            (full_setup, partials)
        } else {
            let (_pilot_fabric, setup) = {
                let _pilot_span = obs.span("cpa.pilot");
                pilot_setup(base, &config)?
            };
            let partials = slm_par::par_map(exp.workers, &shards, |spec| {
                capture_shard(
                    base,
                    &setup,
                    &config,
                    spec,
                    checkpoint_every,
                    plan.total,
                    obs,
                )
            });
            (setup, partials)
        };

    // Fold shards in index order. When shard i holds a checkpoint at
    // global trace T, the campaign state at T is (all shards < i,
    // fully absorbed) ⊕ (shard i's snapshot at T): a prefix-merge.
    // Both operands depend only on the plan, so the progress curve is
    // worker-count invariant.
    let mut merged: Vec<CpaAttack> = (0..setup.single_bit_slots)
        .map(|_| CpaAttack::new(setup.model, setup.points))
        .collect();
    let mut progress_per: Vec<Vec<ProgressPoint>> =
        vec![Vec::with_capacity(base.checkpoints); setup.single_bit_slots];
    for partial in partials {
        let partial = partial?;
        obs.absorb(&partial.frame);
        for (global, snapshot) in &partial.snapshots {
            let _eval_span = obs.span("cpa.eval");
            for (slot, snap) in snapshot.iter().enumerate() {
                let mut at_checkpoint = merged[slot].clone();
                at_checkpoint.merge(snap);
                let peaks = at_checkpoint.peak_correlations_par(exp.workers).to_vec();
                if slot == 0 {
                    obs.observe("cpa.checkpoint_margin", leader_margin(&peaks));
                }
                progress_per[slot].push(ProgressPoint {
                    traces: *global,
                    peak_corr: peaks,
                });
            }
        }
        for (acc, part) in merged.iter_mut().zip(&partial.attacks) {
            acc.merge_recorded(part, obs);
        }
    }

    Ok(assemble_result(
        base,
        &setup,
        &merged,
        progress_per,
        exp.workers,
        base.traces,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SensorSource;
    use slm_fabric::BenignCircuit;

    #[test]
    fn parallel_campaign_is_worker_count_invariant() {
        // The whole CpaResult — progress curve, MTD, peaks — must be
        // bit-identical (PartialEq on every f64) at any worker count.
        let run = |workers: usize| {
            let exp = ParallelCpa {
                base: CpaExperiment {
                    circuit: BenignCircuit::DualC6288,
                    source: SensorSource::TdcAll,
                    traces: 600,
                    checkpoints: 3,
                    pilot_traces: 40,
                    seed: 77,
                },
                shard_traces: 175,
                workers,
            };
            run_cpa_parallel(&exp).unwrap()
        };
        let serial = run(1);
        let wide = run(3);
        assert_eq!(serial, wide);
        assert_eq!(serial.traces, 600);
        // 600/3 = 200-trace checkpoints plus the final partial shard
        // boundary at 600 (= a checkpoint) ⇒ 3 progress points.
        assert_eq!(serial.progress.len(), 3);
        assert_eq!(serial.progress.last().unwrap().traces, 600);
    }

    #[test]
    fn parallel_tdc_campaign_recovers_key() {
        let exp = ParallelCpa {
            base: CpaExperiment {
                circuit: BenignCircuit::DualC6288,
                source: SensorSource::TdcAll,
                traces: 4_000,
                checkpoints: 8,
                pilot_traces: 100,
                seed: 7,
            },
            shard_traces: 500,
            workers: 0,
        };
        let r = run_cpa_parallel(&exp).unwrap();
        assert_eq!(r.recovered_key_byte, Some(r.correct_key_byte));
        let mtd = r.mtd.expect("TDC should disclose the key");
        assert!(mtd <= 4_000, "MTD {mtd} should be within budget");
        assert_eq!(r.final_peaks.len(), 256);
    }

    #[test]
    fn recorded_parallel_metrics_are_worker_count_invariant() {
        let run = |workers: usize| {
            let exp = ParallelCpa {
                base: CpaExperiment {
                    circuit: BenignCircuit::DualC6288,
                    source: SensorSource::TdcAll,
                    traces: 300,
                    checkpoints: 3,
                    pilot_traces: 20,
                    seed: 13,
                },
                shard_traces: 75,
                workers,
            };
            let obs = Obs::memory();
            let result = run_cpa_parallel_recorded(&exp, &obs).unwrap();
            (result, obs.snapshot())
        };
        let (r1, f1) = run(1);
        let (r4, f4) = run(4);
        assert_eq!(r1, r4);
        // Wall-clock span durations differ; everything else — counters,
        // gauges, histograms, span counts — must be bit-identical.
        assert_eq!(f1.deterministic(), f4.deterministic());
        assert_eq!(f1.counter("cpa.traces_absorbed"), 300);
        assert_eq!(f1.spans["cpa.shard"].count, 4);
        assert_eq!(f1.spans["cpa.pilot"].count, 1);
        assert_eq!(f1.counter("cpa.merge_events"), 4);
        assert_eq!(f1.counter("cpa.traces_merged"), 300);
        assert_eq!(f1.histograms["cpa.checkpoint_margin"].count, 3);
    }

    #[test]
    fn default_shard_size_covers_budget() {
        let base = CpaExperiment {
            circuit: BenignCircuit::Alu192,
            source: SensorSource::TdcAll,
            traces: 1000,
            checkpoints: 4,
            pilot_traces: 10,
            seed: 1,
        };
        let exp = ParallelCpa::new(base).with_workers(2);
        // div_ceil: 1000 traces split 16 ways is 63-trace shards, not
        // the 62 floor division gave (which grew a degenerate 17th
        // shard of 8 traces).
        assert_eq!(exp.shard_traces, 63);
        let plan = exp.plan();
        assert_eq!(plan.total, 1000);
        let shards = plan.shards();
        assert_eq!(shards.len(), 16);
        assert_eq!(shards.iter().map(|s| s.traces).sum::<u64>(), 1000);
        assert!(shards.iter().all(|s| s.traces > 0), "no empty shards");
    }
}
