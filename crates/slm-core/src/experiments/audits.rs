//! Stealth, timing, floorplan and ATPG studies (paper Figs. 3/4 and the
//! Section VI discussion points).

use serde::{Deserialize, Serialize};
use slm_atpg::{FoundStimulus, Objective, StimulusSearch};
use slm_checker::{check_structure, check_timing, CheckKind, CheckReport};
use slm_fabric::floorplan::{CellKind, Floorplan, Rect};
use slm_fabric::{BenignCircuit, FabricError};
use slm_netlist::generators::{ring_oscillator, ripple_carry_adder, tdc_delay_line};
use slm_netlist::words;
use slm_timing::{simulate_transition, DelayModel};

/// Verdicts of the structural checker over the design zoo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StealthAudit {
    /// `(design name, report, is_attack_circuit)` — attack circuits
    /// should be flagged, benign sensors should pass.
    pub rows: Vec<(String, CheckReport, bool)>,
}

impl StealthAudit {
    /// True iff every known-malicious specimen is flagged and every
    /// benign sensor passes — the paper's stealth claim.
    pub fn stealth_demonstrated(&self) -> bool {
        self.rows
            .iter()
            .all(|(_, report, is_attack)| report.is_clean() != *is_attack)
    }
}

/// Runs the structural checker across ring oscillators, a TDC delay
/// line, and both benign sensor circuits.
///
/// # Errors
///
/// Propagates circuit generation failures.
pub fn stealth_audit() -> Result<StealthAudit, FabricError> {
    let mut rows = Vec::new();
    let ro = ring_oscillator(8)?;
    rows.push(("ring_oscillator".to_string(), check_structure(&ro), true));
    let tdc = tdc_delay_line(64)?;
    rows.push(("tdc_delay_line".to_string(), check_structure(&tdc), true));
    for circuit in [BenignCircuit::Alu192, BenignCircuit::DualC6288] {
        let built = circuit.build()?;
        rows.push((
            circuit.name().to_string(),
            check_structure(&built.netlist),
            false,
        ));
    }
    Ok(StealthAudit { rows })
}

/// One circuit's timing-audit row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingVerdict {
    /// Circuit name.
    pub name: String,
    /// STA fmax, MHz.
    pub fmax_mhz: f64,
    /// Meets the 50 MHz synthesis clock.
    pub meets_synth_clock: bool,
    /// Meets the 300 MHz overclock.
    pub meets_overclock: bool,
    /// Whether a strict timing check at 300 MHz flags the design.
    pub strict_check_fires: bool,
}

/// The strict-timing study of Section VI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingAudit {
    /// Per-circuit verdicts.
    pub rows: Vec<TimingVerdict>,
}

/// Runs STA + strict timing checks on both benign circuits.
///
/// # Errors
///
/// Propagates circuit generation and timing failures.
pub fn timing_audit(achieved_critical_ns: f64) -> Result<TimingAudit, FabricError> {
    let mut rows = Vec::new();
    for circuit in [BenignCircuit::Alu192, BenignCircuit::DualC6288] {
        let built = circuit.build()?;
        let ann =
            DelayModel::default().annotate_for_period(&built.netlist, achieved_critical_ns, 1.0)?;
        let sta = ann.sta()?;
        rows.push(TimingVerdict {
            name: circuit.name().to_string(),
            fmax_mhz: sta.fmax_mhz(),
            meets_synth_clock: sta.meets_timing(50.0),
            meets_overclock: sta.meets_timing(300.0),
            strict_check_fires: check_timing(&ann, 300.0).flagged(CheckKind::TimingOverclock),
        });
    }
    Ok(TimingAudit { rows })
}

/// Rendered floorplan data (Figs. 3/4 content).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloorplanView {
    /// Circuit name.
    pub name: String,
    /// ASCII rendering of the placed fabric.
    pub ascii: String,
    /// Packing density (cells per bounding-box area) of the benign logic.
    pub benign_density: f64,
    /// Packing density of the TDC cells.
    pub tdc_density: f64,
    /// Number of sensitive-endpoint cells marked.
    pub sensitive_cells: usize,
}

/// Places a benign circuit, a TDC, the AES victim and the RO array on
/// the CLB grid and renders the result.
///
/// `sensitive_endpoints` should come from a census run (Figs. 7/15);
/// that many benign cells are marked red.
///
/// # Errors
///
/// Propagates circuit generation failures.
pub fn floorplan_views(
    circuit: BenignCircuit,
    sensitive_endpoints: usize,
    seed: u64,
) -> Result<FloorplanView, FabricError> {
    let built = circuit.build()?;
    // ~8 gates per CLB, capped at a third of the tenant region so large
    // circuits still render as a scatter rather than a solid block.
    let gate_cells = (built.netlist.len() / 8).clamp(32, 22 * 46 / 3);
    let mut fp = Floorplan::zynq7020();
    // Tenant layout mirroring Fig. 3: attacker region holds the benign
    // circuit and the reference TDC; victim region holds AES; RO array
    // fills its own block.
    fp.column(
        Rect {
            x: 1,
            y: 2,
            w: 2,
            h: 40,
        },
        CellKind::Tdc,
        64,
    );
    fp.scatter(
        Rect {
            x: 6,
            y: 2,
            w: 22,
            h: 46,
        },
        CellKind::BenignLogic,
        gate_cells.min(22 * 46),
        seed,
    );
    fp.scatter(
        Rect {
            x: 30,
            y: 2,
            w: 9,
            h: 46,
        },
        CellKind::Aes,
        220,
        seed ^ 1,
    );
    fp.scatter(
        Rect {
            x: 41,
            y: 2,
            w: 8,
            h: 46,
        },
        CellKind::Ro,
        300,
        seed ^ 2,
    );
    let marked = fp.mark_sensitive(sensitive_endpoints, seed ^ 3);
    Ok(FloorplanView {
        name: circuit.name().to_string(),
        benign_density: fp.density(CellKind::BenignLogic),
        tdc_density: fp.density(CellKind::Tdc),
        sensitive_cells: marked,
        ascii: fp.render_ascii(),
    })
}

/// Results of the ATPG stimulus study (the Section VI extension).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtpgStudy {
    /// Settle time at the target endpoint under the hand-crafted
    /// carry stimulus, ps.
    pub hand_settle_ps: f64,
    /// The stimulus found automatically.
    pub found: FoundStimulus,
    /// found.score / hand_settle_ps — ≥ 1 means the search matched or
    /// beat the human pattern.
    pub ratio: f64,
}

/// Compares the paper's hand-crafted adder stimulus against automatic
/// stimulus search on an `n`-bit ripple-carry adder.
///
/// # Errors
///
/// Propagates generation/timing failures.
pub fn atpg_stimulus_study(n: usize, restarts: usize, seed: u64) -> Result<AtpgStudy, FabricError> {
    let nl = ripple_carry_adder(n)?;
    let ann = DelayModel::default().annotate(&nl);
    let mut reset = words::to_bits(0, n);
    reset.extend(words::to_bits(0, n));
    let mut measure = words::to_bits((1u128 << n) - 1, n);
    measure.extend(words::to_bits(1, n));
    let hand = simulate_transition(&ann, &reset, &measure)?;
    let hand_settle_ps = hand.output_waves()[n - 1].settle_time_fs() as f64 / 1000.0;
    let search = StimulusSearch::new(&ann, Objective::MaxSettleTime { endpoint: n - 1 });
    let found = search.run(restarts, seed);
    let ratio = found.score / hand_settle_ps;
    Ok(AtpgStudy {
        hand_settle_ps,
        found,
        ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stealth_audit_demonstrates_the_claim() {
        let audit = stealth_audit().unwrap();
        assert_eq!(audit.rows.len(), 4);
        assert!(audit.stealth_demonstrated(), "{audit:?}");
        // spot: RO flagged for a loop specifically
        let (_, ro_report, _) = &audit.rows[0];
        assert!(ro_report.flagged(CheckKind::CombinationalLoop));
    }

    #[test]
    fn timing_audit_shows_the_overclock_gap() {
        let audit = timing_audit(5.2).unwrap();
        for row in &audit.rows {
            assert!(row.meets_synth_clock, "{row:?}");
            assert!(!row.meets_overclock, "{row:?}");
            assert!(row.strict_check_fires, "{row:?}");
            assert!(row.fmax_mhz > 50.0 && row.fmax_mhz < 300.0);
        }
    }

    #[test]
    fn floorplan_view_scatters_benign_compacts_tdc() {
        let v = floorplan_views(BenignCircuit::DualC6288, 49, 11).unwrap();
        assert!(v.tdc_density > 2.0 * v.benign_density, "{v:?}");
        assert_eq!(v.sensitive_cells, 49);
        assert!(v.ascii.contains('S'));
        assert!(v.ascii.contains('T'));
        assert!(v.ascii.contains("legend"));
    }

    #[test]
    fn atpg_matches_hand_stimulus_on_small_adder() {
        let study = atpg_stimulus_study(10, 40, 5).unwrap();
        assert!(
            study.ratio >= 0.8,
            "search reached only {:.0}% of the hand pattern",
            study.ratio * 100.0
        );
    }
}
