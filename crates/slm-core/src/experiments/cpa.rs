//! The CPA key-recovery experiments (paper Figs. 9–13, 17, 18).

use serde::{Deserialize, Serialize};
use slm_cpa::{
    common_mode_polarity, leader_margin, measurements_to_disclosure, BitActivity, CpaAttack,
    LastRoundModel, PostProcessor, ProgressPoint, TraceBatch,
};
use slm_fabric::{AesActivity, BenignCircuit, FabricConfig, FabricError, MultiTenantFabric};
use slm_obs::Obs;

/// Traces staged per accumulator flush in the campaign loops. Chunks
/// never cross a checkpoint boundary, and batch absorption is
/// bit-identical to one-at-a-time absorption
/// ([`CpaAttack::add_batch`]), so the value only affects throughput.
pub(crate) const ABSORB_BATCH: u64 = 32;

/// Which sensor feeds the attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensorSource {
    /// TDC thermometer depth (Fig. 9).
    TdcAll,
    /// One thermometer tap of the TDC (Fig. 11; the paper uses the
    /// highest-variance tap, bit 32, next to the idle level). `None`
    /// selects the tap at the pilot-phase median depth — the tap that
    /// dithers most at the operating point.
    TdcSingleBit(Option<usize>),
    /// Hamming weight of the benign circuit's *bits of interest*
    /// (Figs. 10, 17).
    BenignHammingWeight,
    /// One benign-circuit path endpoint (Figs. 12, 13, 18). `Some(i)`
    /// forces endpoint `i`; `None` records the top eight pilot-phase
    /// endpoints by variance, attacks each in parallel, and keeps the
    /// one whose leading candidate separates best — the offline
    /// selection the paper describes ("this particular bit … lead to a
    /// slightly better result").
    BenignSingleBit(Option<usize>),
}

/// Parameters of one CPA campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpaExperiment {
    /// The benign circuit sharing the fabric with the victim.
    pub circuit: BenignCircuit,
    /// Which sensor output the attacker records.
    pub source: SensorSource,
    /// Number of attack traces.
    pub traces: u64,
    /// Number of evenly spaced progress checkpoints.
    pub checkpoints: usize,
    /// Traces of the pilot phase that identifies the bits of interest.
    pub pilot_traces: usize,
    /// Experiment seed.
    pub seed: u64,
}

/// Outcome of one CPA campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpaResult {
    /// Ground-truth last-round key byte under attack.
    pub correct_key_byte: u8,
    /// The leading candidate at the end, if it strictly leads.
    pub recovered_key_byte: Option<u8>,
    /// Traces needed until the correct key led for good, if it did.
    pub mtd: Option<u64>,
    /// Correlation-progress checkpoints (the paper's "(b)" panels).
    pub progress: Vec<ProgressPoint>,
    /// Final peak |r| per candidate (the paper's "(a)" panels).
    pub final_peaks: Vec<f64>,
    /// Endpoints identified as fluctuating during the pilot phase.
    pub bits_of_interest: Vec<usize>,
    /// The endpoint used for single-bit attacks.
    pub selected_bit: Option<usize>,
    /// Total traces processed.
    pub traces: u64,
}

/// Runs one CPA campaign.
///
/// Pipeline (matching the paper's workflow): a pilot phase captures full
/// endpoint vectors while the victim encrypts, from which the
/// fluctuating *bits of interest* and the highest-variance endpoint are
/// derived; the main phase then captures only the final-round window
/// (and only the needed endpoints), post-processes each capture to
/// scalar points, and feeds a streaming last-round CPA.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn run_cpa(exp: &CpaExperiment) -> Result<CpaResult, FabricError> {
    run_cpa_inner(exp, |_| {}, &Obs::null())
}

/// [`run_cpa`] with an observability handle: the campaign emits
/// `cpa.*` counters, per-checkpoint leader margins and PDN droop
/// telemetry into `obs`. With a [`NullRecorder`](slm_obs::NullRecorder)
/// handle this is the plain serial campaign.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn run_cpa_recorded(exp: &CpaExperiment, obs: &Obs) -> Result<CpaResult, FabricError> {
    run_cpa_inner(exp, |_| {}, obs)
}

/// Everything the pilot phase decides about a campaign: the hypothesis
/// model, the ground truth, the derived endpoint selections and the
/// trace post-processing. Shared between the serial and sharded
/// campaign loops so both paths make identical offline decisions.
#[derive(Debug, Clone)]
pub(crate) struct CampaignSetup {
    pub model: LastRoundModel,
    pub correct_key_byte: u8,
    pub bits_of_interest: Vec<usize>,
    pub candidate_bits: Vec<usize>,
    pub selected_bit: Option<usize>,
    pub window: std::ops::Range<usize>,
    pub points: usize,
    pub endpoints: Vec<usize>,
    pub single_bit_slots: usize,
    pub processor: Option<PostProcessor>,
}

/// Runs the pilot phase on a fresh fabric built from `config` and
/// derives the campaign setup. The fabric is returned with its noise
/// and plaintext streams advanced past the pilot, so the serial path
/// can keep capturing on it exactly as before the pilot/main split was
/// factored out.
pub(crate) fn pilot_setup(
    exp: &CpaExperiment,
    config: &FabricConfig,
) -> Result<(MultiTenantFabric, CampaignSetup), FabricError> {
    let mut fabric = MultiTenantFabric::new(config)?;
    let model = LastRoundModel::paper_target();
    let correct_key_byte = fabric.aes().round_keys()[10][model.ct_byte];

    // ---- pilot: find the bits of interest ------------------------------
    let mut activity = BitActivity::new(fabric.endpoints());
    let mut tdc_depths: Vec<u32> = Vec::new();
    let mut pilot_samples = Vec::new();
    for _ in 0..exp.pilot_traces {
        let pt = fabric.random_plaintext();
        let rec = fabric.encrypt_and_capture(pt);
        for s in &rec.benign {
            activity.add(s);
        }
        pilot_samples.extend(rec.benign);
        tdc_depths.extend(&rec.tdc);
    }
    tdc_depths.sort_unstable();
    let tdc_median = tdc_depths.get(tdc_depths.len() / 2).copied().unwrap_or(31);
    let mut bits_of_interest = activity.sensitive_bits();
    if bits_of_interest.is_empty() {
        bits_of_interest = (0..fabric.endpoints()).collect();
    }
    // Candidate endpoints for single-bit attacks: the top pilot
    // endpoints by variance (one forced endpoint counts as a single
    // candidate).
    let candidate_bits: Vec<usize> = match exp.source {
        SensorSource::BenignSingleBit(Some(i)) => vec![i],
        SensorSource::BenignSingleBit(None) => {
            let ranked = activity.by_variance();
            let mut picks: Vec<usize> = ranked
                .into_iter()
                .filter(|&i| activity.variance(i) > 0.0)
                .take(8)
                .collect();
            if picks.is_empty() {
                // nothing toggled in the pilot: fall back to the first
                // bit of interest so the attack still runs
                picks.push(bits_of_interest[0]);
            }
            picks
        }
        _ => Vec::new(),
    };
    let selected_bit = match exp.source {
        SensorSource::BenignSingleBit(_) => Some(candidate_bits.first().copied().unwrap_or(0)),
        SensorSource::TdcSingleBit(Some(b)) => Some(b),
        SensorSource::TdcSingleBit(None) => Some(tdc_median as usize),
        _ => None,
    };

    let window = fabric.last_round_window();
    let points = window.len();
    let endpoints: Vec<usize> = match exp.source {
        SensorSource::TdcAll | SensorSource::TdcSingleBit(_) => Vec::new(),
        SensorSource::BenignHammingWeight => bits_of_interest.clone(),
        SensorSource::BenignSingleBit(_) => candidate_bits.clone(),
    };
    let single_bit_slots = match exp.source {
        SensorSource::BenignSingleBit(_) => candidate_bits.len().max(1),
        _ => 1,
    };
    let processor = match exp.source {
        SensorSource::BenignHammingWeight => {
            // Align each endpoint's droop polarity, estimated offline
            // from the pilot recording (covariance with the common
            // mode). For the ALU adder all sensitive endpoints share a
            // polarity, so this reduces to the paper's plain Hamming
            // weight; the C6288's mixed rise/fall endpoints would
            // otherwise cancel in the sum.
            let invert = common_mode_polarity(&pilot_samples, &bits_of_interest);
            Some(PostProcessor::HammingWeightAligned(invert))
        }
        SensorSource::BenignSingleBit(_) => Some(PostProcessor::SingleBit(0)),
        _ => None,
    };
    Ok((
        fabric,
        CampaignSetup {
            model,
            correct_key_byte,
            bits_of_interest,
            candidate_bits,
            selected_bit,
            window,
            points,
            endpoints,
            single_bit_slots,
            processor,
        },
    ))
}

/// Whether every campaign decision for `source` is known without
/// running pilot captures. TDC sources with a fixed (or no) tap don't
/// depend on pilot statistics — only the result's `bits_of_interest`
/// metadata comes from the pilot — so a sharded campaign can start
/// capturing immediately and run the pilot concurrently as one more
/// task on the worker pool.
pub(crate) fn pilot_independent(source: SensorSource) -> bool {
    matches!(
        source,
        SensorSource::TdcAll | SensorSource::TdcSingleBit(Some(_))
    )
}

/// The pilot-free part of [`pilot_setup`]: geometry, model and ground
/// truth, derivable from the fabric configuration alone. Only valid
/// for [`pilot_independent`] sources — the fields a pilot would fill
/// (`bits_of_interest`) are left empty and must be patched from the
/// real pilot before assembling the result.
pub(crate) fn geometry_setup(
    exp: &CpaExperiment,
    config: &FabricConfig,
) -> Result<CampaignSetup, FabricError> {
    debug_assert!(pilot_independent(exp.source));
    let fabric = MultiTenantFabric::new(config)?;
    let model = LastRoundModel::paper_target();
    let window = fabric.last_round_window();
    Ok(CampaignSetup {
        model,
        correct_key_byte: fabric.aes().round_keys()[10][model.ct_byte],
        bits_of_interest: Vec::new(),
        candidate_bits: Vec::new(),
        selected_bit: match exp.source {
            SensorSource::TdcSingleBit(Some(b)) => Some(b),
            _ => None,
        },
        points: window.len(),
        window,
        endpoints: Vec::new(),
        single_bit_slots: 1,
        processor: None,
    })
}

/// Post-processes one capture into the trace points of attack slot
/// `slot` — the single shared definition of every sensor source's
/// trace-point function, used by the scalar and batched absorb paths.
fn fill_points(
    source: SensorSource,
    setup: &CampaignSetup,
    rec: &slm_fabric::CaptureRecord,
    slot: usize,
    point_buf: &mut [f64],
) {
    match source {
        SensorSource::TdcAll => {
            for (dst, &d) in point_buf.iter_mut().zip(&rec.tdc) {
                *dst = f64::from(d);
            }
        }
        SensorSource::TdcSingleBit(_) => {
            let b = setup.selected_bit.expect("set by pilot");
            for (dst, &d) in point_buf.iter_mut().zip(&rec.tdc) {
                *dst = f64::from(u8::from(d as usize >= b));
            }
        }
        SensorSource::BenignSingleBit(_) => {
            for (dst, s) in point_buf.iter_mut().zip(&rec.benign) {
                *dst = f64::from(u8::from(s.bit(slot)));
            }
        }
        SensorSource::BenignHammingWeight => {
            let p = setup.processor.as_ref().expect("set by pilot");
            for (dst, s) in point_buf.iter_mut().zip(&rec.benign) {
                *dst = p.reduce(s);
            }
        }
    }
}

/// Post-processes one capture into trace points and feeds the per-slot
/// attacks — the scalar campaign loop body, shared by the serial and
/// sharded paths.
pub(crate) fn absorb_record(
    source: SensorSource,
    setup: &CampaignSetup,
    rec: &slm_fabric::CaptureRecord,
    attacks: &mut [CpaAttack],
    point_buf: &mut [f64],
    obs: &Obs,
) {
    obs.incr("cpa.traces_absorbed");
    for (slot, attack) in attacks.iter_mut().enumerate() {
        fill_points(source, setup, rec, slot, point_buf);
        attack.add_trace_recorded(&rec.ciphertext, point_buf, obs);
    }
}

/// Post-processes a chunk of captures and absorbs it through the
/// blocked SoA batch path: per slot, every record's points are staged
/// into a [`TraceBatch`] and flushed with [`CpaAttack::add_batch`],
/// which is bit-identical to absorbing the records one at a time in
/// order (the accumulator cells see the same additions in the same
/// order). `staging` buffers are cleared on return; their allocations
/// are reused across chunks.
pub(crate) fn absorb_batch(
    source: SensorSource,
    setup: &CampaignSetup,
    recs: &[slm_fabric::CaptureRecord],
    attacks: &mut [CpaAttack],
    staging: &mut [TraceBatch],
    point_buf: &mut [f64],
    obs: &Obs,
) {
    obs.add("cpa.traces_absorbed", recs.len() as u64);
    for rec in recs {
        for (slot, batch) in staging.iter_mut().enumerate() {
            fill_points(source, setup, rec, slot, point_buf);
            batch.push(rec.ciphertext, point_buf);
        }
    }
    for (attack, batch) in attacks.iter_mut().zip(staging.iter_mut()) {
        attack
            .add_batch_recorded(batch, obs)
            .expect("staging geometry matches the attack");
        batch.clear();
    }
}

/// Turns finished accumulators and their progress curves into a
/// [`CpaResult`]: picks the best single-bit candidate slot, derives the
/// MTD and the recovered byte. `eval_workers` threads evaluate the final
/// correlation surface (1 = serial; the evaluation is bit-identical at
/// any count).
pub(crate) fn assemble_result(
    exp: &CpaExperiment,
    setup: &CampaignSetup,
    attacks: &[CpaAttack],
    mut progress_per: Vec<Vec<ProgressPoint>>,
    eval_workers: usize,
    traces: u64,
) -> CpaResult {
    // For multi-candidate single-bit attacks, keep the candidate whose
    // leading key separates best from the runner-up — computable without
    // ground truth.
    let chosen_slot = if attacks.len() == 1 {
        0
    } else {
        (0..attacks.len())
            .max_by(|&a, &b| {
                let ma = leader_margin(&attacks[a].peak_correlations());
                let mb = leader_margin(&attacks[b].peak_correlations());
                ma.partial_cmp(&mb).expect("margins are finite")
            })
            .unwrap_or(0)
    };
    let attack = &attacks[chosen_slot];
    let progress = progress_per.swap_remove(chosen_slot);
    let selected_bit = match exp.source {
        SensorSource::BenignSingleBit(_) => setup.candidate_bits.get(chosen_slot).copied(),
        _ => setup.selected_bit,
    };
    let correct_key_byte = setup.correct_key_byte;
    let final_peaks = attack.peak_correlations_par(eval_workers).to_vec();
    let mtd = measurements_to_disclosure(&progress, correct_key_byte);
    let recovered_key_byte = progress
        .last()
        .filter(|p| p.key_leads(correct_key_byte))
        .map(|_| correct_key_byte)
        .or_else(|| {
            // report the actual leader when it is not the correct key
            let (best, _) = attack.best_candidate();
            (attack.rank_of(best) == 0 && best != correct_key_byte).then_some(best)
        });
    CpaResult {
        correct_key_byte,
        recovered_key_byte,
        mtd,
        progress,
        final_peaks,
        bits_of_interest: setup.bits_of_interest.clone(),
        selected_bit,
        traces,
    }
}

/// [`run_cpa`] with a fabric-configuration hook applied before the
/// fabric is built — used by the countermeasure and placement studies.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub(crate) fn run_cpa_inner(
    exp: &CpaExperiment,
    tweak: impl FnOnce(&mut FabricConfig),
    obs: &Obs,
) -> Result<CpaResult, FabricError> {
    let mut config = FabricConfig {
        benign: exp.circuit,
        seed: exp.seed,
        ..FabricConfig::default()
    };
    tweak(&mut config);
    let (mut fabric, setup) = {
        let _pilot_span = obs.span("cpa.pilot");
        pilot_setup(exp, &config)?
    };

    // ---- main phase -----------------------------------------------------
    // One attack per single-bit candidate (index 0 used by the other
    // sources).
    let mut attacks: Vec<CpaAttack> = (0..setup.single_bit_slots)
        .map(|_| CpaAttack::new(setup.model, setup.points))
        .collect();
    let mut progress_per: Vec<Vec<ProgressPoint>> =
        vec![Vec::with_capacity(exp.checkpoints); setup.single_bit_slots];
    let checkpoint_every = (exp.traces / exp.checkpoints.max(1) as u64).max(1);
    let mut point_buf = vec![0.0f64; setup.points];
    let mut staging: Vec<TraceBatch> = (0..setup.single_bit_slots)
        .map(|_| TraceBatch::with_capacity(setup.points, ABSORB_BATCH as usize))
        .collect();
    let mut recs: Vec<slm_fabric::CaptureRecord> = Vec::with_capacity(ABSORB_BATCH as usize);
    // Chunked capture loop: up to ABSORB_BATCH traces per chunk, never
    // crossing a checkpoint boundary. Plaintext generation stays
    // interleaved with encryption (both draw from the fabric's seed
    // stream), so the captured traces are the same as the one-at-a-time
    // loop's, and batch absorption is bit-identical to scalar
    // absorption — the whole refactor is invisible to the result.
    let mut t = 0u64;
    while t < exp.traces {
        let boundary = (t / checkpoint_every + 1) * checkpoint_every;
        let stop = boundary.min(exp.traces).min(t + ABSORB_BATCH);
        recs.clear();
        {
            let _capture_span = obs.span("cpa.capture");
            for _ in t..stop {
                let pt = fabric.random_plaintext();
                recs.push(fabric.encrypt_windowed(pt, setup.window.clone(), &setup.endpoints));
            }
        }
        {
            let _absorb_span = obs.span("cpa.absorb");
            absorb_batch(
                exp.source,
                &setup,
                &recs,
                &mut attacks,
                &mut staging,
                &mut point_buf,
                obs,
            );
        }
        t = stop;
        if t % checkpoint_every == 0 || t == exp.traces {
            let _eval_span = obs.span("cpa.eval");
            for (slot, attack) in attacks.iter().enumerate() {
                let peaks = attack.peak_correlations().to_vec();
                if slot == 0 {
                    obs.observe("cpa.checkpoint_margin", leader_margin(&peaks));
                }
                progress_per[slot].push(ProgressPoint {
                    traces: t,
                    peak_corr: peaks,
                });
            }
        }
    }
    if obs.enabled() {
        let t = fabric.pdn_telemetry();
        obs.gauge("pdn.v_min", t.v_min);
        obs.gauge("pdn.v_max", t.v_max);
        obs.gauge("pdn.settled_streak", t.settled_streak as f64);
        if let Some(d) = fabric.defense_telemetry() {
            obs.gauge("defense.injected_max_a", d.injected_max_a);
            obs.gauge("defense.injected_mean_a", d.injected_mean_a());
            obs.gauge("defense.detector_max_score", d.max_score);
            obs.add("defense.windows", d.windows);
            obs.add("defense.alarm_windows", d.alarm_windows);
            obs.add("defense.alarm_events", d.alarm_events);
            obs.add("defense.jitter_cycles", d.jitter_cycles);
        }
    }

    Ok(assemble_result(
        exp,
        &setup,
        &attacks,
        progress_per,
        1,
        exp.traces,
    ))
}

/// Runs an AES-activity pilot only, returning the activity accumulator —
/// shared helper for studies that need endpoint statistics under real
/// victim traffic.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn aes_pilot_activity(
    circuit: BenignCircuit,
    samples: usize,
    seed: u64,
) -> Result<BitActivity, FabricError> {
    let config = FabricConfig {
        benign: circuit,
        seed,
        ..FabricConfig::default()
    };
    let mut fabric = MultiTenantFabric::new(&config)?;
    let trace = fabric.run_activity(None, AesActivity::Continuous, samples);
    let mut activity = BitActivity::new(fabric.endpoints());
    for s in &trace.benign {
        activity.add(s);
    }
    Ok(activity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdc_recovers_key_quickly() {
        let exp = CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces: 4_000,
            checkpoints: 8,
            pilot_traces: 100,
            seed: 7,
        };
        let r = run_cpa(&exp).unwrap();
        assert_eq!(r.recovered_key_byte, Some(r.correct_key_byte));
        let mtd = r.mtd.expect("TDC should disclose the key");
        assert!(mtd <= 3_000, "TDC MTD {mtd} should be well under 3k traces");
        assert_eq!(r.progress.len(), 8);
        assert_eq!(r.final_peaks.len(), 256);
    }

    #[test]
    fn tdc_single_bit_recovers_key() {
        let exp = CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcSingleBit(None),
            traces: 8_000,
            checkpoints: 8,
            pilot_traces: 100,
            seed: 8,
        };
        let r = run_cpa(&exp).unwrap();
        assert_eq!(r.recovered_key_byte, Some(r.correct_key_byte));
    }

    #[test]
    fn recorded_campaign_emits_cpa_metrics() {
        let exp = CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces: 120,
            checkpoints: 3,
            pilot_traces: 20,
            seed: 5,
        };
        let obs = Obs::memory();
        let recorded = run_cpa_recorded(&exp, &obs).unwrap();
        let plain = run_cpa(&exp).unwrap();
        // Observability must never perturb the result.
        assert_eq!(recorded, plain);
        let frame = obs.snapshot();
        assert_eq!(frame.counter("cpa.traces_absorbed"), 120);
        assert_eq!(frame.counter("cpa.accumulator_traces"), 120);
        let margins = &frame.histograms["cpa.checkpoint_margin"];
        assert_eq!(margins.count, 3);
        assert_eq!(frame.spans["cpa.pilot"].count, 1);
        let v_min = frame.gauges["pdn.v_min"].last;
        let v_max = frame.gauges["pdn.v_max"].last;
        assert!(v_min < v_max, "droop telemetry: {v_min} .. {v_max}");
    }

    #[test]
    fn pilot_finds_bits_of_interest() {
        let exp = CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::BenignSingleBit(None),
            traces: 200,
            checkpoints: 2,
            pilot_traces: 150,
            seed: 9,
        };
        let r = run_cpa(&exp).unwrap();
        assert!(!r.bits_of_interest.is_empty());
        let bit = r.selected_bit.unwrap();
        assert!(r.bits_of_interest.contains(&bit));
    }
}
