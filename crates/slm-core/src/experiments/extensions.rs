//! Extensions beyond the paper's evaluation: full 16-byte key recovery,
//! TVLA leakage assessment, and the active-fence countermeasure study.

use serde::{Deserialize, Serialize};
use slm_aes::soft;
use slm_cpa::{common_mode_polarity, BitActivity, MultiByteCpa, PostProcessor, WelchTTest};
use slm_fabric::{BenignCircuit, FabricConfig, FabricError, FenceConfig, MultiTenantFabric};

use super::cpa::{run_cpa, CpaExperiment, CpaResult, SensorSource};

/// Outcome of the full-key recovery extension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullKeyResult {
    /// The true last round key.
    pub true_round_key: [u8; 16],
    /// The recovered last round key (leading candidate per byte).
    pub recovered_round_key: [u8; 16],
    /// The master key recovered by inverting the key schedule.
    pub recovered_master_key: [u8; 16],
    /// Whether the master key is exactly right.
    pub master_key_correct: bool,
    /// How many round-key bytes lead.
    pub correct_bytes: usize,
    /// Rank of the true byte per position (0 = leading).
    pub ranks: Vec<usize>,
    /// Traces used.
    pub traces: u64,
}

/// Recovers all sixteen bytes of the last round key from one windowed
/// trace stream, then inverts the key schedule — the attack the paper's
/// single-byte demonstration implies.
///
/// The capture window spans the whole final round (all four datapath
/// columns), so every byte's leakage cycle is covered by the same
/// traces.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn full_key_recovery(
    circuit: BenignCircuit,
    source: SensorSource,
    traces: u64,
    pilot_traces: usize,
    seed: u64,
) -> Result<FullKeyResult, FabricError> {
    let config = FabricConfig {
        benign: circuit,
        seed,
        ..FabricConfig::default()
    };
    let mut fabric = MultiTenantFabric::new(&config)?;
    let true_round_key = fabric.aes().round_keys()[10];

    // pilot (as in run_cpa)
    let mut activity = BitActivity::new(fabric.endpoints());
    let mut pilot_samples = Vec::new();
    for _ in 0..pilot_traces {
        let pt = fabric.random_plaintext();
        let rec = fabric.encrypt_and_capture(pt);
        for s in &rec.benign {
            activity.add(s);
        }
        pilot_samples.extend(rec.benign);
    }
    let mut bits_of_interest = activity.sensitive_bits();
    if bits_of_interest.is_empty() {
        bits_of_interest = (0..fabric.endpoints()).collect();
    }

    let window = fabric.last_round_window();
    let points = window.len();
    let (endpoints, processor): (Vec<usize>, Option<PostProcessor>) = match source {
        SensorSource::TdcAll | SensorSource::TdcSingleBit(_) => (Vec::new(), None),
        SensorSource::BenignHammingWeight => {
            let invert = common_mode_polarity(&pilot_samples, &bits_of_interest);
            (
                bits_of_interest.clone(),
                Some(PostProcessor::HammingWeightAligned(invert)),
            )
        }
        SensorSource::BenignSingleBit(sel) => {
            let bit =
                sel.unwrap_or_else(|| activity.best_endpoint().unwrap_or(bits_of_interest[0]));
            (vec![bit], Some(PostProcessor::SingleBit(0)))
        }
    };

    let mut multi = MultiByteCpa::new(0, points);
    let mut point_buf = vec![0.0f64; points];
    for _ in 0..traces {
        let pt = fabric.random_plaintext();
        let rec = fabric.encrypt_windowed(pt, window.clone(), &endpoints);
        match &processor {
            None => {
                for (dst, &d) in point_buf.iter_mut().zip(&rec.tdc) {
                    *dst = f64::from(d);
                }
            }
            Some(p) => {
                for (dst, s) in point_buf.iter_mut().zip(&rec.benign) {
                    *dst = p.reduce(s);
                }
            }
        }
        multi.add_trace(&rec.ciphertext, &point_buf);
    }

    // The final 16 × 256-candidate evaluation fans out over the worker
    // pool; it is bit-identical to the serial evaluation at any count.
    let recovered_round_key = multi.recovered_round_key_par(0);
    let recovered_master_key = soft::invert_key_schedule(&recovered_round_key);
    Ok(FullKeyResult {
        true_round_key,
        recovered_round_key,
        recovered_master_key,
        master_key_correct: recovered_master_key == config.aes_key,
        correct_bytes: multi.correct_bytes(&true_round_key),
        ranks: multi.ranks(&true_round_key).to_vec(),
        traces,
    })
}

/// TVLA verdict for one sensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TvlaResult {
    /// Max |t| over window points for the TDC.
    pub tdc_max_t: f64,
    /// Max |t| for the benign sensor (aligned Hamming weight).
    pub benign_max_t: f64,
    /// Whether each exceeds the 4.5 threshold.
    pub tdc_leaks: bool,
    /// Whether the benign sensor shows significant leakage.
    pub benign_leaks: bool,
    /// Traces per class.
    pub traces_per_class: u64,
}

/// Fixed-vs-random TVLA through both sensors simultaneously.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn tvla_study(
    circuit: BenignCircuit,
    traces: u64,
    pilot_traces: usize,
    seed: u64,
) -> Result<TvlaResult, FabricError> {
    let config = FabricConfig {
        benign: circuit,
        seed,
        ..FabricConfig::default()
    };
    let mut fabric = MultiTenantFabric::new(&config)?;

    let mut activity = BitActivity::new(fabric.endpoints());
    let mut pilot_samples = Vec::new();
    for _ in 0..pilot_traces {
        let pt = fabric.random_plaintext();
        let rec = fabric.encrypt_and_capture(pt);
        for s in &rec.benign {
            activity.add(s);
        }
        pilot_samples.extend(rec.benign);
    }
    let mut bits = activity.sensitive_bits();
    if bits.is_empty() {
        bits = (0..fabric.endpoints()).collect();
    }
    let invert = common_mode_polarity(&pilot_samples, &bits);
    let processor = PostProcessor::HammingWeightAligned(invert);

    let window = fabric.last_round_window();
    let points = window.len();
    let fixed_pt = [0x5a; 16];
    let mut tdc_test = WelchTTest::new(points);
    let mut benign_test = WelchTTest::new(points);
    let mut tdc_buf = vec![0.0f64; points];
    let mut benign_buf = vec![0.0f64; points];
    for i in 0..(2 * traces) {
        let fixed = i % 2 == 0;
        let pt = if fixed {
            fixed_pt
        } else {
            fabric.random_plaintext()
        };
        let rec = fabric.encrypt_windowed(pt, window.clone(), &bits);
        for (dst, &d) in tdc_buf.iter_mut().zip(&rec.tdc) {
            *dst = f64::from(d);
        }
        for (dst, s) in benign_buf.iter_mut().zip(&rec.benign) {
            *dst = processor.reduce(s);
        }
        tdc_test.add(fixed, &tdc_buf);
        benign_test.add(fixed, &benign_buf);
    }
    Ok(TvlaResult {
        tdc_max_t: tdc_test.max_abs_t(),
        benign_max_t: benign_test.max_abs_t(),
        tdc_leaks: tdc_test.leaks(),
        benign_leaks: benign_test.leaks(),
        traces_per_class: traces,
    })
}

/// Did the active fence help? MTD (or best margin) with and without.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FenceStudy {
    /// Baseline result (no fence).
    pub without_fence: CpaResult,
    /// Result with the fence enabled.
    pub with_fence: CpaResult,
    /// Fence configuration used.
    pub fence: FenceConfig,
}

impl FenceStudy {
    /// Whether the fence degraded the attack: either it no longer
    /// discloses, or its MTD grew.
    pub fn fence_effective(&self) -> bool {
        match (self.without_fence.mtd, self.with_fence.mtd) {
            (Some(_), None) => true,
            (Some(a), Some(b)) => b > a,
            _ => false,
        }
    }
}

/// Runs the same CPA campaign with and without an active fence — the
/// countermeasure the paper's related work (Krautter et al. \[27\])
/// proposes against exactly this class of sensor.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn fence_study(base: &CpaExperiment, fence: FenceConfig) -> Result<FenceStudy, FabricError> {
    let without_fence = run_cpa(base)?;
    let with_fence = run_cpa_with(base, |config| config.fence = Some(fence))?;
    Ok(FenceStudy {
        without_fence,
        with_fence,
        fence,
    })
}

/// Runs a CPA campaign with a configuration tweak applied before the
/// fabric is built (the hook the countermeasure studies use).
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn run_cpa_with(
    exp: &CpaExperiment,
    tweak: impl FnOnce(&mut FabricConfig),
) -> Result<CpaResult, FabricError> {
    super::cpa::run_cpa_inner(exp, tweak, &slm_obs::Obs::null())
}

/// [`run_cpa_with`] with an observability handle — a tweaked campaign
/// that also emits `cpa.*` and (when a defense is mounted) `defense.*`
/// telemetry. Used by the attack-vs-defense matrix.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn run_cpa_with_recorded(
    exp: &CpaExperiment,
    tweak: impl FnOnce(&mut FabricConfig),
    obs: &slm_obs::Obs,
) -> Result<CpaResult, FabricError> {
    super::cpa::run_cpa_inner(exp, tweak, obs)
}

/// Masking study: the same campaign against an unmasked and a
/// first-order-masked AES datapath.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskingStudy {
    /// Outcome against the unmasked victim.
    pub unmasked: CpaResult,
    /// Outcome against the masked victim.
    pub masked: CpaResult,
}

impl MaskingStudy {
    /// Whether masking defeated or degraded the attack.
    pub fn masking_effective(&self) -> bool {
        match (self.unmasked.mtd, self.masked.mtd) {
            (Some(_), None) => true,
            (Some(a), Some(b)) => b > a,
            _ => false,
        }
    }
}

/// Runs the same CPA campaign against an unmasked and a masked AES —
/// the "masking" countermeasure the paper's related work cites as the
/// classic algorithmic defence.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn masking_study(base: &CpaExperiment) -> Result<MaskingStudy, FabricError> {
    let unmasked = run_cpa(base)?;
    let masked = run_cpa_with(base, |config| config.masked_aes = true)?;
    Ok(MaskingStudy { unmasked, masked })
}

/// One row of the placement study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementRow {
    /// Victim↔attacker PDN coupling used.
    pub coupling: f64,
    /// The campaign outcome at this coupling.
    pub result: CpaResult,
}

/// Placement-distance study: re-runs the same CPA campaign with the
/// victim's PDN region progressively decoupled from the attacker's —
/// modelling greater physical separation between tenant slots, the
/// dependence Glamočanin et al. measured on real cloud FPGAs. The
/// attacker's best recourse against a distant victim is more traces.
///
/// # Errors
///
/// Propagates fabric construction failures.
pub fn placement_study(
    base: &CpaExperiment,
    couplings: &[f64],
) -> Result<Vec<PlacementRow>, FabricError> {
    couplings
        .iter()
        .map(|&k| {
            let result = run_cpa_with(base, |config| config.victim_coupling = k)?;
            Ok(PlacementRow {
                coupling: k,
                result,
            })
        })
        .collect()
}

/// Sanity helper for reports: true iff benign leakage is detectable but
/// needs far more data than the TDC (the reproduction's headline
/// relationship).
pub fn tdc_dominates(benign: &CpaResult, tdc: &CpaResult) -> bool {
    match (tdc.mtd, benign.mtd) {
        (Some(t), Some(b)) => b > 5 * t,
        (Some(_), None) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_cpa::TVLA_THRESHOLD;

    #[test]
    fn full_key_recovery_via_tdc() {
        let r = full_key_recovery(
            BenignCircuit::DualC6288,
            SensorSource::TdcAll,
            20_000,
            50,
            5,
        )
        .unwrap();
        assert!(
            r.correct_bytes >= 14,
            "TDC at 20k traces should recover nearly all bytes: {:?} (ranks {:?})",
            r.correct_bytes,
            r.ranks
        );
        if r.correct_bytes == 16 {
            assert!(r.master_key_correct);
            assert_eq!(r.recovered_master_key, FabricConfig::default().aes_key);
        }
    }

    #[test]
    fn tvla_detects_leakage_in_both_sensors() {
        let r = tvla_study(BenignCircuit::Alu192, 6_000, 50, 6).unwrap();
        assert!(r.tdc_leaks, "TDC t = {}", r.tdc_max_t);
        assert!(r.tdc_max_t > TVLA_THRESHOLD);
        // benign sensor: weaker but must still show leakage with margin
        assert!(r.benign_max_t > 3.0, "benign sensor t = {}", r.benign_max_t);
    }

    #[test]
    fn masking_defeats_first_order_cpa() {
        let base = CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces: 5_000,
            checkpoints: 8,
            pilot_traces: 50,
            seed: 9,
        };
        let study = masking_study(&base).unwrap();
        assert!(
            study.unmasked.mtd.is_some(),
            "unmasked baseline must disclose"
        );
        assert!(
            study.masked.mtd.is_none(),
            "first-order CPA must fail against the masked datapath: {:?}",
            study.masked.mtd
        );
        assert!(study.masking_effective());
    }

    #[test]
    fn placement_distance_degrades_the_attack() {
        let base = CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces: 3_000,
            checkpoints: 6,
            pilot_traces: 50,
            seed: 8,
        };
        let rows = placement_study(&base, &[1.0, 0.25]).unwrap();
        let near = &rows[0].result;
        let far = &rows[1].result;
        assert!(near.mtd.is_some(), "co-located attack must disclose");
        let near_margin = near
            .progress
            .last()
            .map(|p| p.margin(near.correct_key_byte))
            .unwrap_or(0.0);
        let far_margin = far
            .progress
            .last()
            .map(|p| p.margin(far.correct_key_byte))
            .unwrap_or(0.0);
        // quartering the coupling quarters the signal: either the far
        // attack fails outright or its margin collapses
        assert!(
            far.mtd.is_none() || far_margin < near_margin * 0.6,
            "near margin {near_margin}, far margin {far_margin}"
        );
    }

    #[test]
    fn fence_degrades_tdc_attack() {
        let base = CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces: 4_000,
            checkpoints: 8,
            pilot_traces: 50,
            seed: 7,
        };
        let study = fence_study(&base, FenceConfig::strong()).unwrap();
        assert!(study.without_fence.mtd.is_some(), "baseline must disclose");
        assert!(
            study.fence_effective(),
            "fence must raise MTD: {:?} vs {:?}",
            study.without_fence.mtd,
            study.with_fence.mtd
        );
    }
}
