//! Figure-data export: serializes experiment results to JSON so runs
//! are inspectable and diffable (the reproduction's equivalent of the
//! paper's plotted series).

use serde::Serialize;
use std::fmt::Write as _;

/// Serializes any experiment result to pretty JSON.
///
/// # Panics
///
/// Never panics for the result types in this crate (they contain no
/// non-string map keys or non-finite-only invariants that JSON cannot
/// express; non-finite floats serialize as `null`).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment results are JSON-serializable")
}

/// Renders an xy series as an aligned two-column table — the textual
/// stand-in for a figure panel.
pub fn series_table(title: &str, x_label: &str, y_label: &str, ys: &[f64]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "{x_label:>10}  {y_label}");
    for (x, y) in ys.iter().enumerate() {
        let _ = writeln!(out, "{x:>10}  {y:.4}");
    }
    out
}

/// Renders the classic CPA "(a)" panel: |r| per key candidate with the
/// correct key marked.
pub fn correlation_panel(peaks: &[f64], correct: u8) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# peak |r| per key candidate (correct = {correct:#04x})"
    );
    let max = peaks.iter().copied().fold(0.0f64, f64::max).max(1e-12);
    for (k, &p) in peaks.iter().enumerate() {
        let bar = "#".repeat((p / max * 40.0).round() as usize);
        let mark = if k == correct as usize {
            " <-- correct key"
        } else {
            ""
        };
        let _ = writeln!(out, "{k:#04x} {p:+.4} {bar}{mark}");
    }
    out
}

/// Renders the observability section of a run report: the recorded
/// metrics as an aligned table under a heading, or a one-line note
/// when nothing was recorded (metrics disabled).
pub fn metrics_section(label: &str, frame: &slm_obs::MetricsFrame) -> String {
    slm_obs::MetricsReport::new(label, frame.clone()).to_table()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_section_renders_counters() {
        let obs = slm_obs::Obs::memory();
        obs.incr("cpa.traces_absorbed");
        obs.add("campaign.delivered", 9);
        let section = metrics_section("unit", &obs.snapshot());
        assert!(section.starts_with("# metrics: unit"));
        assert!(section.contains("cpa.traces_absorbed"));
        assert!(section.contains("campaign.delivered"));
    }

    #[test]
    fn json_roundtrips_structures() {
        #[derive(Serialize)]
        struct S {
            a: u32,
            b: Vec<f64>,
        }
        let json = to_json(&S {
            a: 7,
            b: vec![1.5, 2.5],
        });
        assert!(json.contains("\"a\": 7"));
    }

    #[test]
    fn series_table_lines() {
        let t = series_table("Fig X", "sample", "depth", &[1.0, 2.0]);
        assert!(t.starts_with("# Fig X"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn correlation_panel_marks_key() {
        let mut peaks = vec![0.01; 256];
        peaks[0x42] = 0.5;
        let panel = correlation_panel(&peaks, 0x42);
        assert!(panel.contains("<-- correct key"));
        let correct_line = panel.lines().find(|l| l.contains("<-- correct")).unwrap();
        assert!(correct_line.starts_with("0x42"));
    }
}
