//! Top-level reproduction library for *"Stealthy Logic Misuse for Power
//! Analysis Attacks in Multi-Tenant FPGAs"* (DATE 2021, extended
//! version).
//!
//! This crate orchestrates the substrate crates into the paper's
//! experiments. Every evaluation figure has a runner in
//! [`experiments`]; DESIGN.md maps figure ↔ module ↔ bench target, and
//! EXPERIMENTS.md records paper-reported vs. reproduced values.
//!
//! | Paper figure | Runner |
//! |---|---|
//! | Figs. 3/4 (floorplans) | [`experiments::floorplan_views`] |
//! | Figs. 5/14 (raw toggling bits under ROs) | [`experiments::ro_response`] |
//! | Fig. 6 (TDC vs post-processed ALU) | [`experiments::ro_response`] |
//! | Figs. 7/15 (sensitive-bit census) | [`experiments::bit_census`] |
//! | Figs. 8/16 (per-bit variance) | [`experiments::bit_variance`] |
//! | Figs. 9–13, 17, 18 (CPA) | [`experiments::run_cpa`] |
//! | Stealth discussion (Sec. VI) | [`experiments::stealth_audit`] |
//! | Structural-evasion matrix (Sec. VI) | [`experiments::stealth_matrix`] |
//! | Strict-timing discussion (Sec. VI) | [`experiments::timing_audit`] |
//! | ATPG extension (Sec. VI) | [`experiments::atpg_stimulus_study`] |
//!
//! Extensions beyond the paper (see EXPERIMENTS.md):
//! [`experiments::full_key_recovery`] (16-byte key + schedule
//! inversion), [`experiments::tvla_study`] (leakage assessment),
//! [`experiments::fence_study`] / [`experiments::masking_study`] /
//! [`experiments::placement_study`] (countermeasures), and
//! [`experiments::architecture_study`] (which circuits make good
//! sensors).
//!
//! # Quickstart
//!
//! ```
//! use slm_core::experiments::{run_cpa, CpaExperiment, SensorSource};
//! use slm_fabric::BenignCircuit;
//!
//! // A miniature TDC-referenced key recovery (full-scale runs live in
//! // the benches/examples).
//! let exp = CpaExperiment {
//!     circuit: BenignCircuit::DualC6288,
//!     source: SensorSource::TdcAll,
//!     traces: 3_000,
//!     checkpoints: 6,
//!     pilot_traces: 200,
//!     seed: 42,
//! };
//! let result = run_cpa(&exp).unwrap();
//! assert_eq!(result.recovered_key_byte, Some(result.correct_key_byte));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::{
    atpg_stimulus_study, bit_census, bit_variance, defense_matrix, floorplan_views, ro_response,
    run_cpa, stealth_audit, stealth_matrix, timing_audit, CensusResult, CpaExperiment, CpaResult,
    DefenseArm, DefenseMatrix, DefenseMatrixExperiment, RoResponse, SensorSource, StealthAudit,
    StealthMatrix, TimingAudit, VarianceResult,
};
