//! Vendored minimal `criterion`.
//!
//! Provides the macros and types the workspace's benches use, backed by
//! a plain wall-clock measurement loop: each benchmark runs `warm-up +
//! sample_size` iterations and prints the mean time per iteration.
//! There is no statistical analysis, plotting, or baseline comparison.
//!
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` targets), every benchmark body runs exactly once
//! so the run stays fast while still exercising the code.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (recorded, echoed in the
/// report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for `iter_batched` (accepted, not acted on).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The benchmark harness handle passed to target functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn iters(&self) -> u64 {
        if self.test_mode {
            1
        } else {
            self.sample_size as u64
        }
    }

    /// Times one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.iters(),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&id.to_string(), &b, None);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.parent.iters(),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        return;
    }
    let per_iter = b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX);
    match throughput {
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!(
                "{id:<50} {per_iter:>12.2?}/iter  {:.1} MiB/s",
                rate / (1 << 20) as f64
            );
        }
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!("{id:<50} {per_iter:>12.2?}/iter  {rate:.0} elem/s");
        }
        _ => println!("{id:<50} {per_iter:>12.2?}/iter"),
    }
}

/// Runs and times benchmark bodies.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Declares a group function running the listed targets.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}
