//! Vendored minimal `serde_json`.
//!
//! Renders values implementing the vendored [`serde::Serialize`] trait
//! to JSON text. Only the serialization entry points this workspace
//! uses are provided.

pub use serde::json::Value;

use std::fmt;

/// Serialization error.
///
/// The vendored value model can represent every serializable type in
/// this workspace, so rendering is infallible in practice; the type
/// exists so call sites keep the canonical `Result` signature.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for workspace types; see [`Error`].
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_compact())
}

/// Serializes `value` to two-space-indented JSON.
///
/// # Errors
///
/// Never fails for workspace types; see [`Error`].
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().render_pretty())
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Sample {
        a: u32,
        b: Vec<f64>,
        name: String,
        flag: Option<bool>,
    }

    #[derive(Serialize, Deserialize)]
    enum Mixed {
        Unit,
        Newtype(u8),
        Pair(u8, u8),
        Named { x: f64 },
    }

    #[derive(Serialize, Deserialize)]
    struct Newtype(u32);

    #[test]
    fn derived_struct_renders() {
        let s = Sample {
            a: 7,
            b: vec![1.5, 2.5],
            name: "hi".to_string(),
            flag: None,
        };
        let compact = super::to_string(&s).unwrap();
        assert_eq!(compact, r#"{"a":7,"b":[1.5,2.5],"name":"hi","flag":null}"#);
        let pretty = super::to_string_pretty(&s).unwrap();
        assert!(pretty.contains("\"a\": 7"));
    }

    #[test]
    fn derived_enum_renders() {
        assert_eq!(super::to_string(&Mixed::Unit).unwrap(), "\"Unit\"");
        assert_eq!(
            super::to_string(&Mixed::Newtype(3)).unwrap(),
            r#"{"Newtype":3}"#
        );
        assert_eq!(
            super::to_string(&Mixed::Pair(1, 2)).unwrap(),
            r#"{"Pair":[1,2]}"#
        );
        assert_eq!(
            super::to_string(&Mixed::Named { x: 0.5 }).unwrap(),
            r#"{"Named":{"x":0.5}}"#
        );
    }

    #[test]
    fn newtype_renders_transparently() {
        assert_eq!(super::to_string(&Newtype(9)).unwrap(), "9");
    }
}
