//! Vendored minimal serde derive macros.
//!
//! The offline build environment cannot fetch `syn`/`quote`, so the
//! derive input is parsed directly from the `proc_macro` token stream.
//! Supported shapes — which cover every derive site in this workspace:
//!
//! * structs with named fields,
//! * tuple structs (newtype serialization for arity 1, array otherwise),
//! * unit structs,
//! * enums whose variants are unit, tuple, or struct-like.
//!
//! Generic type parameters are rejected with a compile error; no type
//! in this workspace derives serde traits generically.
//!
//! `#[derive(Serialize)]` emits an implementation of the vendored
//! `serde::Serialize` trait (lowering to `serde::json::Value`);
//! `#[derive(Deserialize)]` emits the marker impl only.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
enum Shape {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(shape) => gen_serialize(&shape)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(shape) => {
            let name = match &shape {
                Shape::Struct { name, .. } | Shape::Enum { name, .. } => name,
            };
            format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
                .parse()
                .expect("generated impl parses")
        }
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde derive does not support generic type `{name}`"
            ));
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Shape::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Shape::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

/// Parses `field: Type, ...` bodies, returning field names in order.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // attributes and visibility before the field name
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' && p.spacing() == Spacing::Alone => {
                i += 1;
            }
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        fields.push(name);
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut count = 0usize;
    let mut pending = false;
    for tok in body {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant, then the trailing comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn value_of(expr: &str) -> String {
    format!("::serde::Serialize::to_json_value({expr})")
}

fn named_object(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), {})",
                value_of(&format!("&{access_prefix}{f}"))
            )
        })
        .collect();
    format!(
        "::serde::json::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

fn gen_serialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => named_object(fields, "self."),
                Fields::Tuple(1) => value_of("&self.0"),
                Fields::Tuple(n) => {
                    let items: Vec<String> =
                        (0..*n).map(|i| value_of(&format!("&self.{i}"))).collect();
                    format!(
                        "::serde::json::Value::Array(::std::vec![{}])",
                        items.join(", ")
                    )
                }
                Fields::Unit => "::serde::json::Value::Null".to_string(),
            };
            (name, body)
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "Self::{vname} => ::serde::json::Value::String(::std::string::String::from({vname:?}))"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            value_of("__f0")
                        } else {
                            let items: Vec<String> =
                                binds.iter().map(|b| value_of(b)).collect();
                            format!(
                                "::serde::json::Value::Array(::std::vec![{}])",
                                items.join(", ")
                            )
                        };
                        format!(
                            "Self::{vname}({}) => ::serde::json::Value::Object(::std::vec![(::std::string::String::from({vname:?}), {inner})])",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let inner = named_object(fields, "");
                        format!(
                            "Self::{vname} {{ {} }} => ::serde::json::Value::Object(::std::vec![(::std::string::String::from({vname:?}), {inner})])",
                            fields.join(", ")
                        )
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(", ")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_json_value(&self) -> ::serde::json::Value {{\n\
         \t\t{body}\n\
         \t}}\n\
         }}"
    )
}
