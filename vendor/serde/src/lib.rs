//! Vendored minimal `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! implements exactly the serde surface the workspace uses: a
//! [`Serialize`] trait that lowers values into an in-memory JSON value
//! tree (rendered by the vendored `serde_json`), a no-op
//! [`Deserialize`] marker trait, and the two derive macros re-exported
//! from `serde_derive`.
//!
//! It is **not** a general serde replacement: there is no data-model
//! abstraction, no serializer plumbing, and deserialization is a
//! compile-time marker only.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Types that can lower themselves into a [`json::Value`] tree.
///
/// The canonical serde trait is generic over serializers; every use in
/// this workspace ultimately targets JSON, so this vendored version
/// fixes the output model to [`json::Value`].
pub trait Serialize {
    /// Lowers `self` into a JSON value tree.
    fn to_json_value(&self) -> json::Value;
}

/// Marker trait emitted by `#[derive(Deserialize)]`.
///
/// Nothing in the workspace deserializes at runtime; the derive exists
/// so type definitions stay source-compatible with canonical serde.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                json::Value::U64(u64::from(*self))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_json_value(&self) -> json::Value {
        json::Value::U64(*self as u64)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                json::Value::I64(i64::from(*self))
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_json_value(&self) -> json::Value {
        json::Value::I64(*self as i64)
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> json::Value {
        json::Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> json::Value {
        json::Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> json::Value {
        match self {
            Some(v) => v.to_json_value(),
            None => json::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> json::Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> json::Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Object(vec![
            ("start".to_string(), self.start.to_json_value()),
            ("end".to_string(), self.end.to_json_value()),
        ])
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> json::Value {
        json::Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    /// Keys are sorted so the rendered JSON is deterministic.
    fn to_json_value(&self) -> json::Value {
        let mut entries: Vec<(String, json::Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        json::Value::Object(entries)
    }
}
