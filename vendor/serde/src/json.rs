//! The JSON value tree that [`crate::Serialize`] lowers into, plus the
//! text renderers used by the vendored `serde_json`.

use std::fmt::Write as _;

/// An owned JSON value.
///
/// Object keys keep insertion order (they come straight from struct
/// field order), matching what `serde_json` produces for derived
/// structs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values render as `null` (JSON cannot
    /// represent them), matching `serde_json`'s default behavior.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Renders without whitespace: `{"a":7}`.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation, matching
    /// `serde_json::to_string_pretty`.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(v) => out.push_str(&render_f64(*v)),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, val)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    val.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Formats a float the way `serde_json` does for the values this
/// workspace produces: integral finite values keep a trailing `.0`, and
/// non-finite values become `null`.
fn render_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Value::Null.render_compact(), "null");
        assert_eq!(Value::Bool(true).render_compact(), "true");
        assert_eq!(Value::U64(7).render_compact(), "7");
        assert_eq!(Value::I64(-3).render_compact(), "-3");
        assert_eq!(Value::F64(1.5).render_compact(), "1.5");
        assert_eq!(Value::F64(2.0).render_compact(), "2.0");
        assert_eq!(Value::F64(f64::NAN).render_compact(), "null");
    }

    #[test]
    fn renders_pretty_object() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(7)),
            (
                "b".to_string(),
                Value::Array(vec![Value::F64(1.5), Value::F64(2.5)]),
            ),
        ]);
        let text = v.render_pretty();
        assert!(text.contains("\"a\": 7"));
        assert!(text.starts_with("{\n  "));
        assert!(text.contains("    1.5"));
    }

    #[test]
    fn escapes_strings() {
        let v = Value::String("a\"b\\c\nd".to_string());
        assert_eq!(v.render_compact(), "\"a\\\"b\\\\c\\nd\"");
    }
}
