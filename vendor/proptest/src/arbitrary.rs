//! `any::<T>()` and the types it supports.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — finite by construction, which is what the
    /// numeric property tests want.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}
