//! Vendored minimal `proptest`.
//!
//! The offline build environment cannot fetch the real crate, so this
//! shim provides the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * strategies: `any::<T>()` for integer types and fixed-size arrays,
//!   integer/float ranges, and `proptest::collection::vec`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Semantics differ from real proptest in two deliberate ways: case
//! generation is **deterministic** (seeded from the test name, so
//! failures reproduce without a persistence file), and there is **no
//! shrinking** — the failing case's number is reported instead.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item becomes a
/// `#[test]` function that samples every strategy `cases` times and
/// runs the body.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::pick(&($strat), &mut __rng);
                )+
                let __run = || -> () { $body };
                __run();
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 0usize..10,
            b in 1u8..=255,
            c in -2.0f64..2.0,
            d in any::<u64>(),
        ) {
            prop_assert!(a < 10);
            prop_assert!(b >= 1);
            prop_assert!((-2.0..2.0).contains(&c));
            prop_assert_eq!(d, d);
        }

        #[test]
        fn vec_strategy_respects_length(
            v in crate::collection::vec(any::<u8>(), 3..7),
        ) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn arrays_fill_every_lane(pt in any::<[u8; 16]>(), _seed in any::<u32>()) {
            prop_assert_eq!(pt.len(), 16);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut r1 = crate::test_runner::TestRng::deterministic("alpha");
        let mut r2 = crate::test_runner::TestRng::deterministic("alpha");
        let mut r3 = crate::test_runner::TestRng::deterministic("beta");
        let a: Vec<u64> = (0..8).map(|_| r1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| r2.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| r3.next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
