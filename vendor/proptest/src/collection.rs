//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An element-count range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A strategy producing `Vec`s whose length falls in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.pick(rng)).collect()
    }
}
