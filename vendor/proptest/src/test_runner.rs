//! Test configuration and the deterministic RNG behind the shim.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 32 cases, overridable with the `PROPTEST_CASES` environment
    /// variable (the same knob real proptest honors).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// SplitMix64 generator, seeded deterministically per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name so every test gets an independent but
    /// reproducible stream.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name, folded into a fixed tweak.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
