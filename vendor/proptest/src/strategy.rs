//! The strategy trait and the range/constant strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of random values for one property-test parameter.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (**self).pick(rng)
    }
}

/// String literals act as regex strategies in real proptest. This shim
/// supports the one form the workspace uses — `.{m,n}`, producing `m..=n`
/// arbitrary printable characters — and falls back to yielding the
/// pattern itself verbatim for anything else.
impl Strategy for str {
    type Value = String;
    fn pick(&self, rng: &mut TestRng) -> String {
        let Some((lo, hi)) = parse_dot_repeat(self) else {
            return self.to_string();
        };
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                // Mostly ASCII with occasional wider code points, so
                // parsers see both byte soup and multi-byte UTF-8.
                match rng.below(8) {
                    0 => char::from_u32(0x20 + rng.below(0x2480) as u32).unwrap_or('?'),
                    _ => (0x20 + rng.below(0x5f) as u8) as char,
                }
            })
            .collect()
    }
}

/// Parses `.{m,n}` into `(m, n)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);
