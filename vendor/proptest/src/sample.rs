//! Sampling strategies (`proptest::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

/// A strategy drawing uniformly from `items`.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires at least one item");
    Select { items }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}
