//! The defender's options beyond structural checking: TVLA-based
//! leakage audits and the active-fence countermeasure, evaluated against
//! the benign-logic sensor.
//!
//! ```sh
//! cargo run --release --example countermeasures
//! ```

use slm_core::experiments::{
    fence_study, full_key_recovery, masking_study, placement_study, tvla_study, CpaExperiment,
    SensorSource,
};
use slm_fabric::{BenignCircuit, FenceConfig};

fn main() {
    // 1. TVLA: is there *any* detectable leakage through each sensor?
    println!("== TVLA (fixed vs random, 6k traces per class) ==");
    for circuit in [BenignCircuit::Alu192, BenignCircuit::DualC6288] {
        let r = tvla_study(circuit, 6_000, 100, 1).expect("fabric builds");
        println!(
            "{:<12} TDC max|t| = {:>6.1} ({})   benign max|t| = {:>5.1} ({})",
            circuit.name(),
            r.tdc_max_t,
            if r.tdc_leaks { "LEAKS" } else { "clean" },
            r.benign_max_t,
            if r.benign_leaks { "LEAKS" } else { "clean" },
        );
    }

    // 2. Full key recovery through the TDC: the end-to-end attack the
    //    single-byte CPA implies.
    println!("\n== full 16-byte key recovery via TDC (30k traces) ==");
    let r = full_key_recovery(BenignCircuit::Alu192, SensorSource::TdcAll, 30_000, 100, 2)
        .expect("fabric builds");
    println!(
        "correct bytes: {}/16   ranks: {:?}",
        r.correct_bytes, r.ranks
    );
    if r.master_key_correct {
        println!("MASTER KEY RECOVERED: {:02x?}", r.recovered_master_key);
    } else {
        println!(
            "partial recovery; round key so far: {:02x?}",
            r.recovered_round_key
        );
    }

    // 3. Active fence: the Krautter-style noise generator as a defence.
    println!("\n== active fence vs the TDC attack ==");
    let base = CpaExperiment {
        circuit: BenignCircuit::DualC6288,
        source: SensorSource::TdcAll,
        traces: 8_000,
        checkpoints: 10,
        pilot_traces: 100,
        seed: 3,
    };
    let study = fence_study(&base, FenceConfig::strong()).expect("fabric builds");
    println!(
        "without fence: mtd = {:?}   with fence: mtd = {:?}   effective: {}",
        study.without_fence.mtd,
        study.with_fence.mtd,
        study.fence_effective()
    );
    // 4. Placement distance: decouple the victim's PDN region.
    println!("\n== placement distance (victim↔attacker PDN coupling) ==");
    let rows = placement_study(
        &CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces: 6_000,
            checkpoints: 8,
            pilot_traces: 100,
            seed: 4,
        },
        &[1.0, 0.5, 0.25],
    )
    .expect("fabric builds");
    println!("{:>9} {:>10} {:>10}", "coupling", "MTD", "margin");
    for row in &rows {
        println!(
            "{:>9.2} {:>10} {:>10.4}",
            row.coupling,
            row.result.mtd.map_or("—".to_string(), |m| m.to_string()),
            row.result
                .progress
                .last()
                .map(|p| p.margin(row.result.correct_key_byte))
                .unwrap_or(0.0)
        );
    }

    // 5. Boolean masking on the victim's datapath.
    println!("\n== AES masking (first-order) ==");
    let mstudy = masking_study(&CpaExperiment {
        circuit: BenignCircuit::DualC6288,
        source: SensorSource::TdcAll,
        traces: 6_000,
        checkpoints: 8,
        pilot_traces: 100,
        seed: 5,
    })
    .expect("fabric builds");
    println!(
        "unmasked: mtd = {:?}   masked: mtd = {:?}   masking effective: {}",
        mstudy.unmasked.mtd,
        mstudy.masked.mtd,
        mstudy.masking_effective()
    );

    println!(
        "fence margin on correct key: {:+.4} → {:+.4}",
        study
            .without_fence
            .progress
            .last()
            .map(|p| p.margin(study.without_fence.correct_key_byte))
            .unwrap_or(0.0),
        study
            .with_fence
            .progress
            .last()
            .map(|p| p.margin(study.with_fence.correct_key_byte))
            .unwrap_or(0.0),
    );
}
