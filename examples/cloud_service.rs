//! The multi-tenant fabric service end to end: a mixed tenant batch —
//! benign workloads, a structural specimen that admission denies, a
//! flagged-but-admitted design, and a stealthy aggressor whose netlist
//! passes the scan while its *runtime* faults a co-resident victim —
//! scheduled onto two boards under an isolate-flagged co-residency
//! policy with one explicit attacker/victim pairing.
//!
//! Run with: `cargo run --release --example cloud_service`

use slm_checker::CheckerConfig;
use slm_cloud::{
    CampaignKind, CampaignOutcome, ClockContract, CloudService, CoResidencyPolicy, SensorSource,
    ServiceConfig, TenantQuota, TenantSubmission, WorkloadSpec,
};
use slm_cpa::DfaModel;
use slm_fabric::{AggressorSpec, BenignCircuit};
use slm_netlist::generators;
use slm_obs::Obs;

fn main() {
    // Two boards, four PR slots each; flagged tenants are quarantined
    // unless the operator explicitly pairs them — which we do for the
    // victim/eve pair, making the paper's co-residency scenario an
    // opt-in configuration line rather than an accident.
    let config = ServiceConfig {
        policy: CoResidencyPolicy::isolate_flagged().allow("victim", "eve"),
        workers: 0,
        ..ServiceConfig::default()
    };
    // Opt into the over-aggressive observation-density heuristic so a
    // plain ripple-carry adder comes back admitted-with-flags — the
    // paper's point about structural screening's false positives.
    let mut checker = CheckerConfig::default();
    checker.observation.enable = true;
    let service = CloudService::new(config).with_checker_config(checker);

    let cpa_workload = WorkloadSpec {
        kind: CampaignKind::Cpa {
            source: SensorSource::TdcAll,
        },
        traces: 2_000,
        campaigns: 2,
        ..WorkloadSpec::default()
    };
    let submissions = vec![
        // Benign fleet.
        TenantSubmission::new("alice", generators::alu(192).expect("alu"))
            .with_workload(cpa_workload),
        TenantSubmission::new("bob", generators::array_multiplier(16).expect("c6288"))
            .with_workload(WorkloadSpec {
                campaigns: 1,
                traces: 150,
                ..cpa_workload
            })
            .with_quota(TenantQuota {
                max_traces_per_round: 150,
                ..TenantQuota::default()
            }),
        // The victim: a clean tenant that will share a board with eve.
        TenantSubmission::new("victim", generators::kogge_stone_adder(32).expect("ksa"))
            .with_workload(WorkloadSpec {
                campaigns: 1,
                traces: 100,
                ..cpa_workload
            }),
        // Structural specimen: the clock-declared carry sensor. The
        // contract declaration is what lets the taint pass catch it.
        TenantSubmission::new("mallory", generators::carry_sensor(64, 4).expect("sensor"))
            .with_contract(ClockContract {
                declared_clocks: vec!["sense".into()],
                clock_mhz: None,
            }),
        // False positive: a ripple-carry adder the opt-in heuristic
        // flags (admitted, but quarantined by the policy).
        TenantSubmission::new("carol", generators::ripple_carry_adder(64).expect("rca")),
        // The stealthy aggressor: netlist is a harmless c17 cutting —
        // admission passes clean — but the workload mounts the
        // calibrated PDN burst aggressor and runs last-round DFA.
        TenantSubmission::new("eve", generators::c17()).with_workload(WorkloadSpec {
            kind: CampaignKind::Fault {
                aggressor: AggressorSpec::stealthy(3.0),
                model: DfaModel::SingleByte { max_fault_bits: 2 },
            },
            circuit: BenignCircuit::DualC6288,
            traces: 400,
            campaigns: 1,
            defense: None,
        }),
    ];

    let obs = Obs::memory();
    let report = service
        .run_recorded(submissions, &obs)
        .expect("service drains");

    println!("== admission & placement ==");
    println!(
        "{:<8} {:<20} {:<12} {:<10} {:>5} {:>8}",
        "tenant", "verdict", "status", "placed", "camps", "traces"
    );
    for rec in &report.tenants {
        let verdict = rec.verdict.map_or("-".to_string(), |v| format!("{v:?}"));
        let placed = rec
            .placement
            .map_or("-".to_string(), |p| format!("b{}/r{}", p.board, p.region));
        println!(
            "{:<8} {:<20} {:<12} {:<10} {:>5} {:>8}",
            rec.tenant,
            verdict,
            format!("{:?}", rec.status),
            placed,
            rec.campaigns_delivered,
            rec.traces_charged,
        );
        for line in &rec.diagnostics {
            println!("         {line}");
        }
    }

    println!("\n== campaign outcomes ==");
    for rec in &report.tenants {
        for (i, outcome) in rec.outcomes.iter().enumerate() {
            match outcome {
                CampaignOutcome::Cpa {
                    recovered_key_byte,
                    correct_key_byte,
                    traces,
                } => println!(
                    "{}#{i}: CPA {traces} traces, key byte {correct_key_byte:#04x} -> {}",
                    rec.tenant,
                    recovered_key_byte.map_or("not recovered".to_string(), |b| format!(
                        "recovered {b:#04x}"
                    )),
                ),
                CampaignOutcome::Fault {
                    captures,
                    faulted,
                    recovered_bytes,
                    key_recovered,
                } => println!(
                    "{}#{i}: FI {captures} captures, {faulted} faulted, {recovered_bytes} key bytes via DFA{}",
                    rec.tenant,
                    if *key_recovered { " (FULL KEY)" } else { "" },
                ),
            }
        }
    }

    let frame = obs.snapshot();
    println!("\n== service metrics ==");
    println!(
        "rounds {} | delivered {} | admitted {} | denied {} | shed {} | evicted {}",
        report.rounds,
        report.campaigns_delivered,
        report.admitted,
        report.denied,
        report.shed,
        report.evicted,
    );
    println!(
        "scan cache: {} hits / {} misses ({:.0}% hit rate)",
        report.cache_hits,
        report.cache_misses,
        100.0 * report.cache_hit_rate(),
    );
    if let Some(latency) = frame.histogram("cloud.admission.latency_rounds") {
        println!(
            "admission latency (rounds): mean {:.2}, max {:.0}",
            latency.mean(),
            latency.max
        );
    }
    if let Some(free) = frame.gauge("cloud.regions.free") {
        println!(
            "regions free: min {:.0}, final {:.0} of {}",
            free.min,
            free.last,
            service.config().boards * service.config().region_rows * service.config().region_cols,
        );
    }
}
