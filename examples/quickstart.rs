//! Quickstart: build the paper's setup, watch the benign ALU act as a
//! voltage sensor, and recover an AES key byte with the reference TDC.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! # pin the capture pool (default: all cores; results are identical
//! # at any thread count):
//! cargo run --release --example quickstart -- --threads 4
//! # write a metrics report of the CPA campaign to a JSON file:
//! cargo run --release --example quickstart -- --metrics metrics.json
//! ```

use slm_core::experiments::{
    ro_response, run_cpa_parallel_recorded, CpaExperiment, ParallelCpa, SensorSource,
};
use slm_core::report;
use slm_fabric::BenignCircuit;
use slm_obs::{MetricsReport, Obs};

/// Parses `--threads N` (0 or absent = machine parallelism).
fn threads_flag() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let raw = args.next().expect("--threads needs a count");
            return raw.parse().expect("--threads: not a count");
        }
    }
    0
}

/// Parses `--metrics PATH`: `Some(path)` enables recording.
fn metrics_flag() -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--metrics" {
            return Some(args.next().expect("--metrics needs a file path"));
        }
    }
    None
}

fn main() {
    let threads = threads_flag();
    let metrics_path = metrics_flag();
    let obs = if metrics_path.is_some() {
        Obs::memory()
    } else {
        Obs::null()
    };
    // 1. The preliminary experiment (paper Fig. 5/6): pulse 8000 ring
    //    oscillators at 4 MHz and watch the overclocked benign circuit's
    //    endpoints fluctuate alongside the reference TDC.
    println!("== RO influence on the benign C6288 sensor (Figs. 5/6/14) ==");
    let resp = ro_response(BenignCircuit::DualC6288, 240, 1).expect("fabric builds");
    println!(
        "sensitive endpoints: {} of 64: {:?}",
        resp.sensitive_bits.len(),
        resp.sensitive_bits
    );
    let tdc: Vec<f64> = resp.tdc.iter().map(|&d| f64::from(d)).collect();
    let hw: Vec<f64> = resp.hw_sensitive.iter().map(|&h| f64::from(h)).collect();
    print!(
        "{}",
        report::series_table("TDC depth (red series)", "sample", "depth", &tdc[..60])
    );
    print!(
        "{}",
        report::series_table("benign HW (blue series)", "sample", "hw", &hw[..60])
    );

    // 2. A miniature CPA campaign through the TDC (paper Fig. 9),
    //    sharded across the capture pool. The result is bit-identical
    //    at any --threads value.
    println!("\n== CPA on AES via the TDC (Fig. 9, reduced scale) ==");
    let exp = ParallelCpa::new(CpaExperiment {
        circuit: BenignCircuit::DualC6288,
        source: SensorSource::TdcAll,
        traces: 5_000,
        checkpoints: 10,
        pilot_traces: 100,
        seed: 2,
    })
    .with_workers(threads);
    let result = run_cpa_parallel_recorded(&exp, &obs).expect("fabric builds");
    println!(
        "correct key byte {:#04x}; recovered {:?}; traces to disclosure {:?}",
        result.correct_key_byte, result.recovered_key_byte, result.mtd
    );
    for p in &result.progress {
        println!(
            "  after {:>6} traces: margin of correct key = {:+.4}",
            p.traces,
            p.margin(result.correct_key_byte)
        );
    }
    assert_eq!(
        result.recovered_key_byte,
        Some(result.correct_key_byte),
        "the TDC attack should succeed at this scale"
    );
    if let Some(path) = metrics_path {
        let report = MetricsReport::new("quickstart", obs.snapshot());
        print!("\n{}", report.to_table());
        std::fs::write(&path, report.to_json()).expect("metrics file is writable");
        println!("metrics written to {path}");
    }
    println!("\nkey byte recovered — see examples/key_recovery_campaign.rs for the full benign-sensor attack");
}
