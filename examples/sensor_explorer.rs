//! Sensor-design explorer: census + variance of the endpoint bits
//! (paper Figs. 7, 8, 15, 16) and the ATPG stimulus search of
//! Section VI, for both benign circuits.
//!
//! ```sh
//! cargo run --release --example sensor_explorer
//! ```

use slm_core::experiments::{activity_study, architecture_study, atpg_stimulus_study};
use slm_core::report;
use slm_fabric::BenignCircuit;

fn main() {
    for circuit in [BenignCircuit::Alu192, BenignCircuit::DualC6288] {
        println!("== {} endpoint census (Figs. 7/15) ==", circuit.name());
        let study = activity_study(circuit, 3_000, 9).expect("fabric builds");
        let c = &study.census;
        println!("  total endpoints:        {}", c.total);
        println!("  RO-sensitive:           {}", c.ro_sensitive.len());
        println!("  AES-affected:           {}", c.aes_sensitive.len());
        println!("  AES ∩ RO:               {}", c.intersection.len());
        println!("  AES-only:               {}", c.aes_only.len());
        println!("  unaffected:             {}", c.unaffected);

        println!("\n  variance ranking (Figs. 8/16), top 10 under AES:");
        let mut rows = study.variance.rows.clone();
        rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
        println!("  {:>8} {:>12} {:>12}", "endpoint", "var (RO)", "var (AES)");
        for &(i, vro, vaes) in rows.iter().take(10) {
            println!("  {i:>8} {vro:>12.4} {vaes:>12.4}");
        }
        println!(
            "  best single-bit sensor: {:?} (paper: bit 21 for its ALU, bit 28 for its C6288)\n",
            study.variance.best_aes_endpoint
        );
        println!("{}", report::to_json(&study.census));
    }

    println!("== architecture study: which circuits make good sensors? ==");
    let arch = architecture_study(7).expect("circuits build");
    println!(
        "{:<14} {:>6} {:>6} {:>9} {:>10} {:>12}",
        "architecture", "gates", "depth", "fmax MHz", "best bits", "usable freq"
    );
    for row in &arch.rows {
        println!(
            "{:<14} {:>6} {:>6} {:>9.1} {:>10} {:>9}/{}",
            row.name,
            row.gates,
            row.depth,
            row.fmax_mhz,
            row.best_count,
            row.usable_periods,
            arch.sweep_ps.len()
        );
    }
    println!(
        "  (serial carry structures are usable at almost any overclock;
   flat ones only in a narrow band around their own critical path)
"
    );

    println!("== ATPG stimulus search (Section VI) ==");
    let study = atpg_stimulus_study(16, 40, 3).expect("adder builds");
    println!(
        "hand-crafted carry stimulus settles the MSB at {:.0} ps",
        study.hand_settle_ps
    );
    println!(
        "automatic search found {:.0} ps ({:.0}% of hand) in {} evaluations",
        study.found.score,
        study.ratio * 100.0,
        study.found.evaluations
    );
}
