//! The full benign-logic key-recovery campaign (paper Figs. 10, 12, 13,
//! 17, 18): attack the AES last-round key byte through the overclocked
//! ALU and C6288 sensors, with Hamming-weight and single-bit
//! post-processing, and compare trace budgets against the TDC baseline.
//!
//! Run with (several minutes at full scale):
//! ```sh
//! cargo run --release --example key_recovery_campaign
//! # reduced scale:
//! cargo run --release --example key_recovery_campaign -- --quick
//! # pin the capture pool (default: all cores; results are identical
//! # at any thread count):
//! cargo run --release --example key_recovery_campaign -- --threads 4
//! # write a metrics report of every campaign (counters, per-shard
//! # spans, PDN telemetry) to a JSON file:
//! cargo run --release --example key_recovery_campaign -- --quick --metrics metrics.json
//! # re-run every campaign under a countermeasure (prng-fence,
//! # constant-fence, adaptive-fence, ldo, or jitter):
//! cargo run --release --example key_recovery_campaign -- --quick --defense prng-fence
//! # run through the crash-safe streaming engine, journalling progress
//! # under ckpt/ (one subdirectory per campaign); an interrupted run
//! # continues from the last good checkpoint generation with --resume:
//! cargo run --release --example key_recovery_campaign -- --checkpoint-dir ckpt
//! cargo run --release --example key_recovery_campaign -- --checkpoint-dir ckpt --resume
//! ```

use slm_core::experiments::{
    run_cpa_parallel_with_recorded, run_streaming_with_recorded, CpaExperiment, DefenseArm,
    ParallelCpa, SensorSource, StreamingCpa,
};
use slm_core::report;
use slm_fabric::{BenignCircuit, DetectorConfig, FabricConfig};
use slm_obs::{MetricsReport, Obs};
use std::path::Path;

/// Parses `--threads N` (0 or absent = machine parallelism).
fn threads_flag() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let raw = args.next().expect("--threads needs a count");
            return raw.parse().expect("--threads: not a count");
        }
    }
    0
}

/// Parses `--metrics PATH`: `Some(path)` enables recording.
fn metrics_flag() -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--metrics" {
            return Some(args.next().expect("--metrics needs a file path"));
        }
    }
    None
}

/// Parses `--checkpoint-dir DIR`: `Some(dir)` routes every campaign
/// through the streaming engine, journalling progress under
/// `DIR/<campaign-slug>/`.
fn checkpoint_dir_flag() -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--checkpoint-dir" {
            return Some(args.next().expect("--checkpoint-dir needs a directory"));
        }
    }
    None
}

/// A filesystem-safe slug for a campaign's checkpoint subdirectory.
fn slug(label: &str) -> String {
    let mut s = String::new();
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            s.push(c.to_ascii_lowercase());
        } else if !s.ends_with('-') && !s.is_empty() {
            s.push('-');
        }
    }
    s.trim_end_matches('-').to_string()
}

/// Whether a ledger directory already holds checkpoint generations.
fn has_checkpoints(dir: &Path) -> bool {
    std::fs::read_dir(dir).is_ok_and(|entries| {
        entries
            .flatten()
            .any(|e| e.file_name().to_string_lossy().ends_with(".slmc"))
    })
}

/// Parses `--defense ARM`: the countermeasure every campaign runs
/// under (absent = undefended, the paper's setting). Returns the arm
/// and a stable tag for the streaming fingerprint, so checkpoints from
/// a differently-defended run are refused on resume.
fn defense_flag() -> Option<(u64, DefenseArm)> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--defense" {
            let raw = args.next().expect("--defense needs an arm name");
            let tag = raw.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3)
            });
            return Some((
                tag,
                match raw.as_str() {
                    "none" => DefenseArm::Undefended,
                    "constant-fence" => DefenseArm::ConstantFence(1.5),
                    "prng-fence" => DefenseArm::PrngFence(1.5),
                    "adaptive-fence" => DefenseArm::AdaptiveFence(1.5),
                    "ldo" => DefenseArm::Ldo(0.25),
                    "jitter" => DefenseArm::ClockJitter(8),
                    other => panic!(
                        "--defense: unknown arm {other:?} (expected none, constant-fence, \
                     prng-fence, adaptive-fence, ldo, or jitter)"
                    ),
                },
            ));
        }
    }
    None
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let resume = std::env::args().any(|a| a == "--resume");
    let threads = threads_flag();
    let metrics_path = metrics_flag();
    let checkpoint_dir = checkpoint_dir_flag();
    let defense = defense_flag();
    if let Some((_, arm)) = &defense {
        println!("-- defense deployed: {} --", arm.label());
    }
    let obs = if metrics_path.is_some() {
        Obs::memory()
    } else {
        Obs::null()
    };
    let scale = if quick { 10 } else { 1 };

    let campaigns: Vec<(&str, BenignCircuit, SensorSource, u64)> = vec![
        (
            "Fig. 9  — TDC, all bits",
            BenignCircuit::Alu192,
            SensorSource::TdcAll,
            20_000 / scale,
        ),
        (
            "Fig. 11 — TDC, single tap",
            BenignCircuit::Alu192,
            SensorSource::TdcSingleBit(None),
            20_000 / scale,
        ),
        (
            "Fig. 10 — ALU, Hamming weight of bits of interest",
            BenignCircuit::Alu192,
            SensorSource::BenignHammingWeight,
            400_000 / scale,
        ),
        (
            "Fig. 12 — ALU, best single endpoint",
            BenignCircuit::Alu192,
            SensorSource::BenignSingleBit(None),
            400_000 / scale,
        ),
        (
            // our C6288 HW sensor needs more traces than the paper's
            // (see EXPERIMENTS.md deviations)
            "Fig. 17 — C6288, Hamming weight",
            BenignCircuit::DualC6288,
            SensorSource::BenignHammingWeight,
            800_000 / scale,
        ),
        (
            "Fig. 18 — C6288, best single endpoint",
            BenignCircuit::DualC6288,
            SensorSource::BenignSingleBit(None),
            500_000 / scale,
        ),
    ];

    let mut summary = Vec::new();
    for (label, circuit, source, traces) in campaigns {
        println!("== {label} ({traces} traces) ==");
        let exp = ParallelCpa::new(CpaExperiment {
            circuit,
            source,
            traces,
            checkpoints: 20,
            pilot_traces: 400,
            seed: 0xc0ffee,
        })
        .with_workers(threads);
        let tweak = |config: &mut FabricConfig| {
            if let Some((_, arm)) = &defense {
                // A defended run models the realistic attacker too:
                // its stimulus pair is slightly asymmetric, which is
                // what the defender's detector keys on.
                config.stimulus_alternation = 0.3;
                config.defense = arm.deployment(
                    DetectorConfig {
                        window_ticks: 4098,
                        alarm_threshold: 0.05,
                    },
                    0xd15c,
                );
            }
        };
        let start = std::time::Instant::now();
        let r = if let Some(base_dir) = &checkpoint_dir {
            let dir = Path::new(base_dir).join(slug(label));
            if has_checkpoints(&dir) && !resume {
                eprintln!(
                    "error: {} already holds checkpoint generations; pass --resume \
                     to continue the interrupted campaign, or clear the directory \
                     to start over",
                    dir.display()
                );
                std::process::exit(2);
            }
            let sexp = StreamingCpa::new(exp.base)
                .with_workers(threads)
                .with_config_tag(defense.as_ref().map_or(0, |(tag, _)| *tag));
            let sr = run_streaming_with_recorded(&sexp, &dir, tweak, &obs).unwrap_or_else(|e| {
                eprintln!("error: streaming campaign failed: {e}");
                std::process::exit(1);
            });
            if let Some(generation) = sr.resumed_generation {
                println!(
                    "  resumed from checkpoint generation {generation}, \
                     finished at {} windows / {} traces{}",
                    sr.windows,
                    sr.traces,
                    if sr.recovered_generations > 0 {
                        format!(
                            "; fell back past {} corrupt generation(s)",
                            sr.recovered_generations
                        )
                    } else {
                        String::new()
                    },
                );
            }
            sr.result
        } else {
            run_cpa_parallel_with_recorded(&exp, tweak, &obs).expect("fabric builds")
        };
        let ok = r.recovered_key_byte == Some(r.correct_key_byte);
        println!(
            "  recovered: {}  mtd: {:?}  bits of interest: {}  selected bit: {:?}  ({:.1?})",
            if ok { "YES" } else { "no " },
            r.mtd,
            r.bits_of_interest.len(),
            r.selected_bit,
            start.elapsed(),
        );
        if ok {
            print!(
                "{}",
                report::correlation_panel(&r.final_peaks, r.correct_key_byte)
            );
        }
        summary.push((label, ok, r.mtd, traces));
    }

    println!("\n== campaign summary ==");
    println!("{:<52} {:>9} {:>12}", "experiment", "recovered", "MTD");
    for (label, ok, mtd, _) in &summary {
        println!(
            "{label:<52} {:>9} {:>12}",
            if *ok { "yes" } else { "no" },
            mtd.map_or("—".to_string(), |m| m.to_string())
        );
    }

    if let Some(path) = metrics_path {
        let report = MetricsReport::new("key_recovery_campaign", obs.snapshot());
        print!("\n{}", report.to_table());
        std::fs::write(&path, report.to_json()).expect("metrics file is writable");
        println!("metrics written to {path}");
    }
}
