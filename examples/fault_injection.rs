//! The active attack: a malicious tenant's aggressor logic pushes the
//! shared PDN hard enough to *fault* the victim's AES, and differential
//! fault analysis turns the faulty ciphertexts into the master key.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use slm_core::experiments::{
    fault_matrix, run_fault_campaign, FaultCampaign, FaultMatrixExperiment,
};
use slm_cpa::DfaModel;
use slm_fabric::{AggressorSpec, BenignCircuit, FabricConfig};

fn aggressor_name(aggressor: &Option<AggressorSpec>) -> String {
    match aggressor {
        None => "none".into(),
        Some(a) => format!(
            "{:.1} A, {}/{} ticks",
            a.peak_current_a, a.on_ticks, a.period_ticks
        ),
    }
}

fn main() {
    // 1. One undefended fault campaign, end to end: the calibrated
    //    stealthy burst droops the victim rail below the carry-cone
    //    threshold during round 9, late state bits flip, and the DFA
    //    accumulator votes its way to the last-round key.
    println!("== fault campaign: stealthy 3.0 A burst, undefended ==");
    let campaign = FaultCampaign {
        config: FabricConfig {
            benign: BenignCircuit::DualC6288,
            seed: 11,
            aggressor: Some(AggressorSpec::stealthy(3.0)),
            ..FabricConfig::default()
        },
        model: DfaModel::SingleByte { max_fault_bits: 2 },
        captures: 2_000,
        shard_captures: 250,
        workers: 0,
    };
    let out = run_fault_campaign(&campaign).expect("fabric builds");
    let (accepted, unfaulted, discarded) = out.dfa.pair_counts();
    println!(
        "captures: {}   faulted: {} ({:.0}/1k)   min victim rail: {:.4} V",
        out.captures,
        out.faulted,
        out.faults_per_1k(),
        out.min_victim_v
    );
    println!(
        "DFA pairs: {accepted} accepted, {discarded} avalanche-discarded, \
         {unfaulted} unfaulted"
    );
    println!(
        "recovered last-round key bytes: {}/16",
        out.dfa.recovered_bytes()
    );
    match out.dfa.recovered_master_key() {
        Some(key) => println!("MASTER KEY RECOVERED: {key:02x?}"),
        None => println!("partial recovery only — raise the capture budget"),
    }

    // 2. The combined SCA/FI matrix: every aggressor operating point
    //    against every deployed defense, plus the defender's online
    //    alternation detector watching each aggressor row.
    println!("\n== combined SCA/FI matrix (standard sweep) ==");
    let exp = FaultMatrixExperiment::standard(11);
    let matrix = fault_matrix(&exp).expect("fabric builds");
    println!(
        "{:<22} {:<14} {:>9} {:>9} {:>6} {:>9}",
        "aggressor", "defense", "flt/1k", "accepted", "key", "alarms"
    );
    for cell in &matrix.cells {
        println!(
            "{:<22} {:<14} {:>9.0} {:>9} {:>6} {:>9}",
            aggressor_name(&cell.aggressor),
            cell.arm.label(),
            cell.faults_per_1k,
            cell.pairs_accepted,
            if cell.key_recovered() { "16/16" } else { "no" },
            cell.alarm_windows
        );
    }

    println!("\n== detector vs aggressor duty cycles (monitor-only) ==");
    for row in &matrix.detector {
        println!(
            "{:<22} score {:>8.4}  {}",
            aggressor_name(&row.aggressor),
            row.reading.max_score,
            if row.detected() {
                "DETECTED"
            } else {
                "evades detection"
            }
        );
    }
    println!(
        "\nNote the stealthy burst: it faults the victim into full key \
         loss yet scores below the detector's no-aggressor baseline — \
         duty-cycle parity, not amplitude, is what the alternation \
         detector sees."
    );
}
