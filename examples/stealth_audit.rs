//! The defender's view: run the structural bitstream checker across the
//! design zoo and show that only a strict timing check — impractical on
//! real designs — catches the benign sensors (paper Section VI).
//!
//! ```sh
//! cargo run --release --example stealth_audit
//! ```

use slm_core::experiments::{floorplan_views, stealth_audit, timing_audit};
use slm_fabric::BenignCircuit;

fn main() {
    println!("== structural bitstream checks (Krautter/FPGADefender style) ==");
    let audit = stealth_audit().expect("circuits build");
    println!("{:<18} {:>8}  findings", "design", "verdict");
    for (name, report, is_attack) in &audit.rows {
        let verdict = if report.is_clean() {
            "CLEAN"
        } else {
            "FLAGGED"
        };
        println!(
            "{name:<18} {verdict:>8}  {}",
            report
                .findings
                .iter()
                .map(|f| f.detail.clone())
                .collect::<Vec<_>>()
                .join("; ")
        );
        assert_eq!(
            report.is_clean(),
            !is_attack,
            "structural checking must flag exactly the known-bad designs"
        );
    }
    println!("\nstealth demonstrated: {}", audit.stealth_demonstrated());

    println!("\n== strict timing check (the only working defence) ==");
    let timing = timing_audit(5.2).expect("circuits build");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>14}",
        "circuit", "fmax MHz", "ok@50MHz", "ok@300MHz", "strict check"
    );
    for row in &timing.rows {
        println!(
            "{:<12} {:>10.1} {:>10} {:>10} {:>14}",
            row.name,
            row.fmax_mhz,
            row.meets_synth_clock,
            row.meets_overclock,
            if row.strict_check_fires {
                "FIRES"
            } else {
                "silent"
            }
        );
    }

    println!("\n== floorplan views (Figs. 3/4) ==");
    for circuit in [BenignCircuit::Alu192, BenignCircuit::DualC6288] {
        let view = floorplan_views(circuit, 49, 7).expect("circuits build");
        println!(
            "\n{}: benign density {:.2}, TDC density {:.2} — the sensor hides in scattered logic",
            view.name, view.benign_density, view.tdc_density
        );
        println!("{}", view.ascii);
    }
}
