//! End-to-end tests of the `slm-cloud` multi-tenant fabric service:
//! the zoo is denied at admission with diagnostics while benign
//! designs place and complete, a hundred-plus concurrent campaigns
//! drain under tight quotas and queue backpressure without deadlock,
//! and the whole service — report *and* deterministic metrics — is
//! bit-identical at 1/2/4/8 workers (property-tested).

use proptest::prelude::*;
use slm_cloud::{
    CampaignKind, ClockContract, CloudService, SensorSource, ServiceConfig, TenantQuota,
    TenantStatus, TenantSubmission, WorkloadSpec,
};
use slm_netlist::generators::{self, zoo};
use slm_obs::Obs;

/// A small CPA workload that keeps campaign runtime in the
/// milliseconds while still exercising the full capture pipeline.
fn tiny_workload(campaigns: u32, traces: u64) -> WorkloadSpec {
    WorkloadSpec {
        kind: CampaignKind::Cpa {
            source: SensorSource::TdcAll,
        },
        traces,
        campaigns,
        ..WorkloadSpec::default()
    }
}

#[test]
fn zoo_is_denied_at_admission_and_benign_tenants_complete() {
    let service = CloudService::new(ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    });
    let subs: Vec<TenantSubmission> = zoo()
        .into_iter()
        .map(|entry| {
            TenantSubmission::new(entry.name, entry.netlist)
                .with_contract(ClockContract {
                    declared_clocks: entry
                        .declared_clocks
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    clock_mhz: None,
                })
                .with_workload(tiny_workload(1, 16))
        })
        .collect();
    let report = service.run(subs).unwrap();

    for entry in zoo() {
        let rec = report.tenant(entry.name).unwrap();
        if entry.malicious {
            assert_eq!(
                rec.status,
                TenantStatus::Denied,
                "{} must be denied at admission",
                entry.name
            );
            assert!(
                !rec.diagnostics.is_empty(),
                "{} denial must carry diagnostics",
                entry.name
            );
            assert!(rec.placement.is_none(), "{} must never place", entry.name);
        } else {
            assert_eq!(
                rec.status,
                TenantStatus::Completed,
                "benign {} must be admitted, placed and completed",
                entry.name
            );
            assert!(rec.placement.is_some());
            assert_eq!(rec.campaigns_delivered, 1);
        }
    }
    let malicious = zoo().iter().filter(|e| e.malicious).count() as u64;
    assert_eq!(report.denied, malicious);
    assert_eq!(report.admitted, zoo().len() as u64 - malicious);
}

#[test]
fn hundred_concurrent_campaigns_drain_under_quota_and_backpressure() {
    // Tight queues force intake deferral and rate caps force
    // multi-round residency: the classic deadlock shapes. 30 tenants x
    // 4 campaigns = 120 campaigns must all still be delivered.
    let config = ServiceConfig {
        admission_queue_depth: 4,
        intake_per_round: 4,
        wait_queue_depth: 30, // bounded, but nothing shed in this test
        max_campaigns_per_round: 12,
        workers: 0,
        ..ServiceConfig::default()
    };
    let service = CloudService::new(config);
    let nl = generators::c17();
    let subs: Vec<TenantSubmission> = (0..30)
        .map(|i| {
            TenantSubmission::new(format!("tenant{i:02}"), nl.clone())
                .with_workload(tiny_workload(4, 8))
                .with_quota(TenantQuota {
                    max_traces_per_round: 16, // at most 2 campaigns/round
                    ..TenantQuota::default()
                })
        })
        .collect();
    let report = service.run(subs).unwrap();
    assert_eq!(report.campaigns_delivered, 120);
    assert!(report.campaigns_delivered >= 100);
    for rec in &report.tenants {
        assert_eq!(
            rec.status,
            TenantStatus::Completed,
            "{} stalled: {rec:?}",
            rec.tenant
        );
        assert_eq!(rec.campaigns_delivered, 4);
        assert_eq!(rec.outcomes.len(), 4);
    }
    // One netlist, thirty submissions: the scan cache and the batch
    // dedup must have absorbed the duplicate scans.
    assert!(report.cache_misses > 0);
    assert!(
        report.rounds >= 2,
        "rate caps must stretch the run over rounds"
    );
}

/// The submission mix used by the determinism property: a benign CPA
/// fleet, a denied specimen, and a fault-injection tenant, under
/// small queues so deferral/backpressure paths execute too.
fn determinism_mix(fleet: usize) -> Vec<TenantSubmission> {
    let mut subs: Vec<TenantSubmission> = (0..fleet)
        .map(|i| {
            TenantSubmission::new(format!("cpa{i}"), generators::c17())
                .with_workload(tiny_workload(2, 8))
        })
        .collect();
    subs.push(TenantSubmission::new(
        "mallory",
        generators::ring_oscillator(8).unwrap(),
    ));
    subs.push(
        TenantSubmission::new("eve", generators::c17()).with_workload(WorkloadSpec {
            kind: CampaignKind::Fault {
                aggressor: slm_fabric::AggressorSpec::stealthy(3.0),
                model: slm_cpa::DfaModel::SingleByte { max_fault_bits: 2 },
            },
            traces: 60,
            campaigns: 1,
            ..WorkloadSpec::default()
        }),
    );
    subs
}

fn run_mix(
    seed: u64,
    fleet: usize,
    workers: usize,
) -> (slm_cloud::ServiceReport, slm_obs::MetricsFrame) {
    let config = ServiceConfig {
        admission_queue_depth: 3,
        intake_per_round: 3,
        max_campaigns_per_round: 4,
        seed,
        workers,
        ..ServiceConfig::default()
    };
    let service = CloudService::new(config);
    let obs = Obs::memory();
    let report = service
        .run_recorded(determinism_mix(fleet), &obs)
        .expect("service drains");
    (report, obs.snapshot().deterministic())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Same submissions + seed => bit-identical report and
    /// worker-invariant deterministic metrics at 1, 2, 4 and 8
    /// workers. This is the service-level analogue of the campaign
    /// stack's shard-order-invariance properties.
    #[test]
    fn service_is_bit_identical_at_1_2_4_8_workers(
        seed in 0u64..1_000,
        fleet in 2usize..5,
    ) {
        let (reference, reference_frame) = run_mix(seed, fleet, 1);
        prop_assert!(reference.campaigns_delivered > 0);
        prop_assert_eq!(reference.denied, 1);
        for workers in [2usize, 4, 8] {
            let (report, frame) = run_mix(seed, fleet, workers);
            prop_assert_eq!(&reference, &report, "report diverged at {} workers", workers);
            prop_assert_eq!(
                &reference_frame,
                &frame,
                "deterministic metrics diverged at {} workers",
                workers
            );
        }
    }
}

#[test]
fn recorded_metrics_cover_every_stage() {
    let service = CloudService::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let obs = Obs::memory();
    let subs = vec![
        TenantSubmission::new("alice", generators::alu(192).unwrap())
            .with_workload(tiny_workload(2, 8)),
        TenantSubmission::new("mallory", generators::ring_oscillator(8).unwrap()),
    ];
    let report = service.run_recorded(subs, &obs).unwrap();
    let frame = obs.snapshot();
    assert_eq!(frame.counter("cloud.submitted"), 2);
    assert_eq!(frame.counter("cloud.admitted"), 1);
    assert_eq!(frame.counter("cloud.admission.denied"), 1);
    assert_eq!(frame.counter("cloud.campaigns.delivered"), 2);
    assert_eq!(frame.counter("cloud.completed"), 1);
    assert!(frame.gauge("cloud.queue.admission.depth").is_some());
    assert!(frame.gauge("cloud.queue.wait.depth").is_some());
    assert!(frame.gauge("cloud.regions.free").is_some());
    let latency = frame
        .histogram("cloud.admission.latency_rounds")
        .expect("latency histogram");
    assert_eq!(latency.count, 2, "one observation per gated submission");
    assert!(frame.span("cloud.round").is_some());
    assert!(frame.span("cloud.admission.scan").is_some());
    assert!(frame.span("cloud.scheduler.place").is_some());
    assert!(frame.span("cloud.campaign").is_some());
    assert_eq!(report.campaigns_delivered, 2);
}

#[test]
fn fault_workload_tenant_faults_the_victim_through_the_service() {
    // The stealthy co-residency scenario end to end: eve's netlist is
    // structurally benign (admission passes), but her workload mounts
    // the calibrated PDN aggressor at runtime and the DFA recovers key
    // material from the faulted ciphertexts.
    let service = CloudService::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let sub = TenantSubmission::new("eve", generators::c17()).with_workload(WorkloadSpec {
        kind: CampaignKind::Fault {
            aggressor: slm_fabric::AggressorSpec::stealthy(3.0),
            model: slm_cpa::DfaModel::SingleByte { max_fault_bits: 2 },
        },
        circuit: slm_fabric::BenignCircuit::DualC6288,
        traces: 300,
        campaigns: 1,
        defense: None,
    });
    let report = service.run(vec![sub]).unwrap();
    let eve = report.tenant("eve").unwrap();
    assert_eq!(eve.status, TenantStatus::Completed);
    match &eve.outcomes[0] {
        slm_cloud::CampaignOutcome::Fault {
            captures, faulted, ..
        } => {
            assert_eq!(*captures, 300);
            assert!(*faulted > 0, "calibrated aggressor must fault the victim");
        }
        other => panic!("expected a fault outcome, got {other:?}"),
    }
}
