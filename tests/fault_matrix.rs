//! Fault-injection campaign and combined SCA/FI matrix integration
//! tests: worker-count invariance (property-tested), end-to-end DFA
//! key recovery on the undefended arm, LDO fault suppression, and the
//! detector's duty-cycle hit/miss profile — including the stealthy
//! duty cycle that *evades* it (a documented finding, not a bug: an
//! even-length burst in an odd period cancels in the alternating sum).

use proptest::prelude::*;
use slm_core::experiments::{
    fault_matrix, run_fault_campaign, DefenseArm, FaultCampaign, FaultCampaignOutcome,
    FaultMatrixExperiment,
};
use slm_cpa::DfaModel;
use slm_fabric::{AggressorSpec, BenignCircuit, FabricConfig};

fn campaign(seed: u64, captures: u64, shard_captures: u64, workers: usize) -> FaultCampaignOutcome {
    let exp = FaultCampaign {
        config: FabricConfig {
            benign: BenignCircuit::DualC6288,
            seed,
            aggressor: Some(AggressorSpec::stealthy(3.0)),
            ..FabricConfig::default()
        },
        model: DfaModel::SingleByte { max_fault_bits: 2 },
        captures,
        shard_captures,
        workers,
    };
    run_fault_campaign(&exp).expect("fabric builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The sharded aggressor campaign is bit-identical serial
    /// vs. parallel at any worker count: the shard layout depends only
    /// on the budget, the aggressor waveform is a pure function of the
    /// tick, and partials merge in shard order.
    #[test]
    fn fault_campaign_bit_identical_at_any_worker_count(
        seed in 0u64..1_000,
        captures in 150u64..300,
        shard_captures in 40u64..90,
        workers in 2usize..=8,
    ) {
        let serial = campaign(seed, captures, shard_captures, 1);
        let parallel = campaign(seed, captures, shard_captures, workers);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(serial.captures, captures);
        // The calibrated stealthy aggressor actually faults at this
        // budget — the equivalence is not vacuous.
        prop_assert!(serial.faulted > 0);
    }
}

#[test]
fn matrix_is_bit_identical_at_1_2_4_8_workers() {
    let base = FaultMatrixExperiment {
        aggressors: vec![None, Some(AggressorSpec::stealthy(3.0))],
        arms: vec![DefenseArm::Undefended, DefenseArm::Ldo(0.25)],
        captures: 240,
        shard_captures: 60,
        detector_samples: 4200,
        ..FaultMatrixExperiment::standard(23)
    };
    let reference = fault_matrix(&FaultMatrixExperiment {
        workers: 1,
        ..base.clone()
    })
    .unwrap();
    for workers in [2, 4, 8] {
        let m = fault_matrix(&FaultMatrixExperiment {
            workers,
            ..base.clone()
        })
        .unwrap();
        assert_eq!(reference, m, "matrix diverged at {workers} workers");
    }
    assert_eq!(reference.cells.len(), 4);
}

#[test]
fn undefended_arm_yields_full_key_recovery_and_ldo_suppresses() {
    let exp = FaultMatrixExperiment {
        aggressors: vec![
            Some(AggressorSpec::stealthy(0.6)),
            Some(AggressorSpec::stealthy(3.0)),
        ],
        arms: vec![DefenseArm::Undefended, DefenseArm::Ldo(0.25)],
        captures: 2_000,
        shard_captures: 250,
        ..FaultMatrixExperiment::standard(11)
    };
    let matrix = fault_matrix(&exp).unwrap();
    let strong = Some(AggressorSpec::stealthy(3.0));
    let weak = Some(AggressorSpec::stealthy(0.6));

    // The calibrated aggressor on the undefended fabric: faults land,
    // the avalanche filter works, and DFA walks away with the key.
    let hot = matrix.cell(strong, &DefenseArm::Undefended).unwrap();
    assert!(hot.faults_per_1k > 100.0, "faults/1k {}", hot.faults_per_1k);
    assert!(hot.pairs_discarded > 0, "avalanche filter never fired");
    assert_eq!(hot.recovered_bytes, 16);
    assert_eq!(
        hot.recovered_key,
        Some(FabricConfig::default().aes_key),
        "DFA must recover the victim's master key"
    );

    // The LDO attenuates the coupled droop below the cone threshold:
    // no faults, no pairs, no key material — recovery suppressed.
    let cold = matrix.cell(strong, &DefenseArm::Ldo(0.25)).unwrap();
    assert_eq!(cold.faults_per_1k, 0.0, "LDO must suppress all faults");
    assert_eq!(cold.recovered_bytes, 0);
    assert_eq!(cold.recovered_key, None);
    assert!(cold.min_victim_v > hot.min_victim_v);

    // A weak aggressor never reaches the threshold even undefended.
    let faint = matrix.cell(weak, &DefenseArm::Undefended).unwrap();
    assert_eq!(faint.faults_per_1k, 0.0);
    assert_eq!(faint.recovered_key, None);
}

#[test]
fn detector_flags_blatant_duty_cycle_and_misses_stealthy_burst() {
    let exp = FaultMatrixExperiment {
        aggressors: vec![
            None,
            Some(AggressorSpec::tick_rate(3.0)),
            Some(AggressorSpec::stealthy(3.0)),
        ],
        arms: vec![DefenseArm::Undefended],
        captures: 300,
        shard_captures: 100,
        ..FaultMatrixExperiment::standard(11)
    };
    let matrix = fault_matrix(&exp).unwrap();

    // No aggressor: the monitoring plane stays quiet (no false alarms).
    let baseline = matrix.detector_for(None).unwrap();
    assert!(!baseline.detected(), "false alarm with no aggressor");

    // The blatant tick-rate duty cycle is exactly the alternation
    // signature the detector keys on: every window alarms, loudly.
    let blatant = matrix
        .detector_for(Some(AggressorSpec::tick_rate(3.0)))
        .unwrap();
    assert!(blatant.detected(), "tick-rate aggressor must alarm");
    assert!(
        blatant.reading.max_score > 10.0 * exp.detector.alarm_threshold,
        "blatant score {}",
        blatant.reading.max_score
    );

    // FINDING: the stealthy burst — same 3.0 A peak, even-length
    // on-phase in an odd period — evades the alternation detector
    // completely (its score does not even rise above the no-aggressor
    // baseline) while still faulting the victim hard enough for full
    // key recovery. Duty-cycle parity, not amplitude, is what the
    // detector sees.
    let stealthy = matrix
        .detector_for(Some(AggressorSpec::stealthy(3.0)))
        .unwrap();
    assert!(
        !stealthy.detected(),
        "stealthy burst unexpectedly detected (score {})",
        stealthy.reading.max_score
    );
    assert!(stealthy.reading.max_score < exp.detector.alarm_threshold);
    let cell = matrix
        .cell(Some(AggressorSpec::stealthy(3.0)), &DefenseArm::Undefended)
        .unwrap();
    assert!(
        cell.faults_per_1k > 0.0,
        "the evading aggressor must still fault"
    );
}

#[test]
fn aggressor_free_matrix_row_matches_disabled_aggressor_campaign() {
    // A zero-peak aggressor and no aggressor at all are the same
    // campaign, bit for bit — the disabled path adds exactly nothing.
    let mk = |aggressor| {
        let exp = FaultCampaign {
            config: FabricConfig {
                benign: BenignCircuit::DualC6288,
                seed: 5,
                aggressor,
                ..FabricConfig::default()
            },
            model: DfaModel::SingleByte { max_fault_bits: 2 },
            captures: 150,
            shard_captures: 50,
            workers: 2,
        };
        run_fault_campaign(&exp).expect("fabric builds")
    };
    let absent = mk(None);
    let zeroed = mk(Some(AggressorSpec::stealthy(0.0)));
    assert_eq!(absent.faulted, 0);
    assert_eq!(zeroed.faulted, 0);
    assert_eq!(absent.dfa, zeroed.dfa);
    assert_eq!(absent.captures, zeroed.captures);
}

#[test]
fn diagonal_round9_model_recovers_through_the_wider_candidate_set() {
    // The round-9 diagonal model admits every MixColumns image of a
    // low-weight pre-mix flip — a ~3x wider difference set per byte
    // than the single-byte model — yet at the standard capture budget
    // the undefended arm still converges to the full master key, and
    // the LDO suppresses it exactly as it does the narrow model.
    let exp = FaultMatrixExperiment {
        aggressors: vec![Some(AggressorSpec::stealthy(3.0))],
        arms: vec![DefenseArm::Undefended, DefenseArm::Ldo(0.25)],
        captures: 2_000,
        shard_captures: 250,
        model: DfaModel::DiagonalRound9 { max_fault_bits: 2 },
        ..FaultMatrixExperiment::standard(11)
    };
    let matrix = fault_matrix(&exp).unwrap();
    let strong = Some(AggressorSpec::stealthy(3.0));

    let hot = matrix.cell(strong, &DefenseArm::Undefended).unwrap();
    assert!(hot.faults_per_1k > 100.0, "faults/1k {}", hot.faults_per_1k);
    assert!(hot.pairs_discarded > 0, "avalanche filter never fired");
    assert_eq!(hot.recovered_bytes, 16);
    assert_eq!(
        hot.recovered_key,
        Some(FabricConfig::default().aes_key),
        "diagonal-model DFA must still recover the master key"
    );

    let cold = matrix.cell(strong, &DefenseArm::Ldo(0.25)).unwrap();
    assert_eq!(cold.faults_per_1k, 0.0, "LDO must suppress all faults");
    assert_eq!(cold.recovered_bytes, 0);
    assert_eq!(cold.recovered_key, None);
}
