//! Cross-crate integration tests: the complete attack chain from fabric
//! construction to key recovery, at reduced trace counts.

use slm_aes::soft;
use slm_core::experiments::{
    activity_study, ro_response, run_cpa, stealth_audit, timing_audit, CpaExperiment, SensorSource,
};
use slm_cpa::{BitActivity, CpaAttack, LastRoundModel, PostProcessor};
use slm_fabric::{
    AesActivity, BenignCircuit, FabricConfig, MultiTenantFabric, RemoteSession, RoSchedule,
};

#[test]
fn full_chain_tdc_key_recovery() {
    // fabric → captures → post-processing → CPA → correct key byte.
    let exp = CpaExperiment {
        circuit: BenignCircuit::DualC6288,
        source: SensorSource::TdcAll,
        traces: 4_000,
        checkpoints: 8,
        pilot_traces: 100,
        seed: 31,
    };
    let r = run_cpa(&exp).unwrap();
    assert_eq!(r.recovered_key_byte, Some(r.correct_key_byte));
    assert!(r.mtd.unwrap() <= 4_000);
    // the reported key must equal the ground-truth schedule value
    let cfg = FabricConfig {
        benign: BenignCircuit::DualC6288,
        ..FabricConfig::default()
    };
    let k10 = soft::key_expansion(&cfg.aes_key)[10];
    assert_eq!(r.correct_key_byte, k10[3]);
}

#[test]
fn manual_pipeline_matches_experiment_runner() {
    // Drive the fabric by hand (as a user of the library would) and
    // check the pieces compose: pilot census, windowed capture,
    // Hamming-weight post-processing, streaming attack.
    let config = FabricConfig {
        benign: BenignCircuit::DualC6288,
        seed: 77,
        ..FabricConfig::default()
    };
    let mut fabric = MultiTenantFabric::new(&config).unwrap();
    let mut activity = BitActivity::new(fabric.endpoints());
    for _ in 0..60 {
        let pt = fabric.random_plaintext();
        let rec = fabric.encrypt_and_capture(pt);
        for s in &rec.benign {
            activity.add(s);
        }
    }
    let bits = activity.sensitive_bits();
    assert!(!bits.is_empty());

    let window = fabric.last_round_window();
    let model = LastRoundModel::paper_target();
    let mut attack = CpaAttack::new(model, window.len());
    let processor = PostProcessor::HammingWeightAll;
    for _ in 0..500 {
        let pt = fabric.random_plaintext();
        let rec = fabric.encrypt_windowed(pt, window.clone(), &bits);
        let points: Vec<f64> = rec.benign.iter().map(|s| processor.reduce(s)).collect();
        attack.add_trace(&rec.ciphertext, &points);
    }
    assert_eq!(attack.traces(), 500);
    // No recovery expectation at 500 traces — just structural sanity.
    assert_eq!(attack.peak_correlations().len(), 256);
}

#[test]
fn preliminary_and_stealth_experiments_compose() {
    let resp = ro_response(BenignCircuit::DualC6288, 200, 5).unwrap();
    assert!(!resp.sensitive_bits.is_empty());

    let study = activity_study(BenignCircuit::DualC6288, 800, 6).unwrap();
    assert!(study.census.ro_sensitive.len() >= study.census.intersection.len());

    let stealth = stealth_audit().unwrap();
    assert!(stealth.stealth_demonstrated());

    let timing = timing_audit(5.2).unwrap();
    assert!(timing.rows.iter().all(|r| r.strict_check_fires));
}

#[test]
fn ro_burst_reaches_both_sensors_in_same_run() {
    // One fabric, one schedule: both the TDC and the benign sensor must
    // register the same droop events (Fig. 6's premise).
    let config = FabricConfig {
        benign: BenignCircuit::Alu192,
        seed: 13,
        ..FabricConfig::default()
    };
    let mut fabric = MultiTenantFabric::new(&config).unwrap();
    let schedule = RoSchedule::paper_4mhz();
    let trace = fabric.run_activity(Some(&schedule), AesActivity::Idle, 300);
    let quiet_tdc: f64 = trace.tdc[..30].iter().map(|&d| f64::from(d)).sum::<f64>() / 30.0;
    let droop_sample = (0..trace.tdc.len()).min_by_key(|&i| trace.tdc[i]).unwrap();
    assert!(
        f64::from(trace.tdc[droop_sample]) < quiet_tdc - 5.0,
        "TDC must dip"
    );
    // the benign sensor's capture at the droop sample differs from quiet
    assert_ne!(
        trace.benign[droop_sample].bits, trace.benign[5].bits,
        "benign endpoints must react to the droop"
    );
    // RO ground truth confirms the droop coincides with enabled ROs
    assert!(trace.ro_enabled[droop_sample] > 0);
}

#[test]
fn key_recovery_through_the_uart_transport() {
    // The full Fig. 2 dataflow: plaintexts down the UART, ciphertext +
    // BRAM-staged trace back, CPA on the host side — TDC source.
    let config = FabricConfig {
        benign: BenignCircuit::DualC6288,
        seed: 99,
        ..FabricConfig::default()
    };
    let mut session = RemoteSession::new(&config, vec![]).unwrap();
    let k10 = soft::key_expansion(&config.aes_key)[10];
    let model = LastRoundModel::paper_target();
    let mut attack = None;
    let mut rng = slm_pdn::noise::Rng64::new(1);
    for _ in 0..3_000 {
        let mut pt = [0u8; 16];
        rng.fill_bytes(&mut pt);
        let rec = session.host_encrypt(pt).unwrap();
        let points: Vec<f64> = rec.tdc.iter().map(|&d| f64::from(d)).collect();
        let attack = attack.get_or_insert_with(|| CpaAttack::new(model, points.len()));
        attack.add_trace(&rec.ciphertext, &points);
    }
    let attack = attack.unwrap();
    assert_eq!(attack.best_candidate().0, k10[3], "key recovered over UART");
    // the campaign has a real wire-time cost
    assert!(
        session.wire_time_s() > 1.0,
        "wire time {}",
        session.wire_time_s()
    );
}

#[test]
fn stored_campaign_reanalyzes_identically() {
    // Capture through the fabric, store with slm-cpa's trace file
    // format, then replay offline — the paper's store-then-analyze flow.
    use slm_cpa::store::{read_traces, replay_into, TraceWriter};
    let config = FabricConfig {
        benign: BenignCircuit::DualC6288,
        seed: 55,
        ..FabricConfig::default()
    };
    let mut fabric = MultiTenantFabric::new(&config).unwrap();
    let window = fabric.last_round_window();
    let model = LastRoundModel::paper_target();
    let mut online = CpaAttack::new(model, window.len());
    let mut writer = TraceWriter::new(Vec::new(), window.len() as u16).unwrap();
    for _ in 0..400 {
        let pt = fabric.random_plaintext();
        let rec = fabric.encrypt_windowed(pt, window.clone(), &[]);
        let points: Vec<f64> = rec
            .tdc
            .iter()
            .map(|&d| f64::from(d as f32)) // f32 round-trip parity
            .collect();
        online.add_trace(&rec.ciphertext, &points);
        writer.write_trace(&rec.ciphertext, &points).unwrap();
    }
    let bytes = writer.finish().unwrap();
    let records = read_traces(&bytes[..]).unwrap();
    let mut offline = CpaAttack::new(model, window.len());
    replay_into(&records, &mut offline);
    assert_eq!(offline.peak_correlations(), online.peak_correlations());
}

#[test]
fn different_seeds_different_campaign_noise_same_key() {
    let mk = |seed| CpaExperiment {
        circuit: BenignCircuit::DualC6288,
        source: SensorSource::TdcAll,
        traces: 1_500,
        checkpoints: 3,
        pilot_traces: 50,
        seed,
    };
    let a = run_cpa(&mk(1)).unwrap();
    let b = run_cpa(&mk(2)).unwrap();
    assert_eq!(a.correct_key_byte, b.correct_key_byte);
    assert_ne!(a.final_peaks, b.final_peaks, "noise must differ per seed");
}
