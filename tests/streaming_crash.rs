//! Crash-safety properties of the streaming campaign engine.
//!
//! The contract under test: a streaming campaign killed at *arbitrary*
//! pipeline sites ([`CrashPlan`]) and resumed over the same ledger
//! directory produces a [`CpaResult`] bit-identical to the
//! uninterrupted run, at any worker count — and never retains more raw
//! traces than one window, regardless of the trace budget.

use slm_core::experiments::{
    run_streaming, run_streaming_crashing, run_streaming_recorded, CpaExperiment, CpaResult,
    CrashPlan, CrashSite, SensorSource, StreamOutcome, StreamingCpa, StreamingError,
};
use slm_fabric::BenignCircuit;
use slm_obs::Obs;
use std::path::PathBuf;
use std::sync::OnceLock;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slm-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reference campaign: 240 traces in four 60-trace windows, one
/// commit per window — four commit groups to aim kills at.
fn campaign() -> StreamingCpa {
    StreamingCpa::new(CpaExperiment {
        circuit: BenignCircuit::DualC6288,
        source: SensorSource::TdcAll,
        traces: 240,
        checkpoints: 4,
        pilot_traces: 20,
        seed: 41,
    })
    .with_window(60)
    .with_commit_every(1)
    .with_workers(1)
}

/// The uninterrupted reference result, computed once.
fn reference() -> &'static CpaResult {
    static REF: OnceLock<CpaResult> = OnceLock::new();
    REF.get_or_init(|| {
        let dir = scratch_dir("reference");
        let r = run_streaming(&campaign(), &dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        r.result
    })
}

/// Drives a faulted run to completion: re-invokes the engine over the
/// same ledger until the crash plan is exhausted and the run completes,
/// exactly as an operator restarting a dead process would.
fn run_until_complete(
    exp: &StreamingCpa,
    dir: &PathBuf,
    plan: &mut CrashPlan,
) -> (CpaResult, u64, u64) {
    let mut kills = 0u64;
    loop {
        match run_streaming_crashing(exp, dir, |_| {}, &Obs::null(), plan).unwrap() {
            StreamOutcome::Complete(r) => return (r.result, kills, r.recovered_generations),
            StreamOutcome::Killed { .. } => kills += 1,
        }
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    const SITES: [CrashSite; 4] = [
        CrashSite::AfterCapture,
        CrashSite::AfterFold,
        CrashSite::TornCommit,
        CrashSite::AfterCommit,
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Any single kill at any site of any commit group, resumed at
        /// 1 or 3 workers, reproduces the uninterrupted result bit for
        /// bit. (Torn first commits leave an all-corrupt ledger, which
        /// is an explicit error — covered separately below — so torn
        /// kills aim at groups ≥ 1 here.)
        #[test]
        fn kill_anywhere_resume_is_bit_identical(
            group in 0u64..4,
            site_idx in 0usize..4,
            workers_idx in 0usize..2,
        ) {
            let site = SITES[site_idx];
            let group = if site == CrashSite::TornCommit { group.max(1) } else { group };
            let workers = [1usize, 3][workers_idx];
            let dir = scratch_dir(&format!("prop-{group}-{site_idx}-{workers}"));
            let exp = campaign().with_workers(workers);
            let mut plan = CrashPlan::none().kill_at(group, site);
            let (result, kills, _) = run_until_complete(&exp, &dir, &mut plan);
            prop_assert_eq!(kills, 1);
            prop_assert_eq!(plan.fired(), 1);
            prop_assert_eq!(&result, reference());
            let _ = std::fs::remove_dir_all(&dir);
        }

        /// Two kills in one lifetime — die, resume, die again, resume —
        /// still land on the identical result.
        #[test]
        fn double_kill_chain_is_bit_identical(
            g1 in 0u64..2,
            g2 in 2u64..4,
            s1 in 0usize..2,
            s2 in 0usize..4,
        ) {
            let dir = scratch_dir(&format!("chain-{g1}-{g2}-{s1}-{s2}"));
            let exp = campaign();
            let mut plan = CrashPlan::none()
                .kill_at(g1, SITES[s1])
                .kill_at(g2, SITES[s2]);
            let (result, kills, _) = run_until_complete(&exp, &dir, &mut plan);
            prop_assert_eq!(kills, 2);
            prop_assert_eq!(&result, reference());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn bit_flip_in_newest_generation_falls_back_gracefully() {
    let dir = scratch_dir("bitflip");
    let exp = campaign();
    // Die right after the third commit, leaving generations 1..=3.
    let mut plan = CrashPlan::none().kill_at(2, CrashSite::AfterCommit);
    let killed = run_streaming_crashing(&exp, &dir, |_| {}, &Obs::null(), &mut plan).unwrap();
    assert!(matches!(killed, StreamOutcome::Killed { .. }));
    // Corrupt the newest generation on disk with a single bit flip.
    let mut gens: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    gens.sort();
    let newest = gens.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(newest, &bytes).unwrap();
    // Resume: the flipped generation is skipped, generation 2 loads,
    // the recovery counter ticks, and the result is still identical.
    let obs = Obs::memory();
    let resumed = run_streaming_recorded(&exp, &dir, &obs).unwrap();
    assert_eq!(&resumed.result, reference());
    assert_eq!(resumed.recovered_generations, 1);
    assert_eq!(obs.snapshot().counter("stream.recovered_generations"), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_first_commit_errors_instead_of_silently_restarting() {
    let dir = scratch_dir("torn-first");
    let exp = campaign();
    let mut plan = CrashPlan::none().kill_at(0, CrashSite::TornCommit);
    run_streaming_crashing(&exp, &dir, |_| {}, &Obs::null(), &mut plan).unwrap();
    // The only generation on disk is torn: every checkpoint is
    // unreadable, and restarting from zero must be an explicit
    // operator decision, not a silent default.
    match run_streaming(&exp, &dir).unwrap_err() {
        StreamingError::Io(e) => {
            let msg = e.to_string();
            assert!(msg.contains("no loadable checkpoint generation"), "{msg}");
        }
        other => panic!("expected Io error, got {other:?}"),
    }
    // The operator clears the ledger; the fresh run matches.
    std::fs::remove_dir_all(&dir).unwrap();
    let fresh = run_streaming(&exp, &dir).unwrap();
    assert_eq!(&fresh.result, reference());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn raw_trace_retention_is_bounded_by_window_not_budget() {
    let run = |traces: u64, tag: &str| {
        let dir = scratch_dir(tag);
        let exp = StreamingCpa::new(CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces,
            checkpoints: 4,
            pilot_traces: 20,
            seed: 42,
        })
        .with_window(50)
        .with_commit_every(4)
        .with_workers(2);
        let obs = Obs::memory();
        let r = run_streaming_recorded(&exp, &dir, &obs).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        (r, obs.snapshot())
    };
    let (small, _) = run(200, "mem-small");
    let (large, frame) = run(1_000, "mem-large");
    // 5× the budget, identical peak retention: one window's traces.
    assert_eq!(small.peak_raw_traces, 50);
    assert_eq!(large.peak_raw_traces, 50);
    assert!(large.peak_raw_traces <= 50);
    assert_eq!(frame.gauges["stream.peak_raw_traces"].last, 50.0);
    assert_eq!(frame.counter("stream.windows_committed"), 20);
    assert_eq!(frame.counter("stream.commits"), 5);
    assert!(frame.counter("stream.bytes_journaled") > 0);
}

#[test]
fn multi_slot_single_bit_campaign_survives_kills() {
    // BenignSingleBit(None) runs up to eight accumulator slots in
    // parallel — the multi-slot stream-checkpoint path.
    let exp = StreamingCpa::new(CpaExperiment {
        circuit: BenignCircuit::DualC6288,
        source: SensorSource::BenignSingleBit(None),
        traces: 180,
        checkpoints: 3,
        pilot_traces: 60,
        seed: 43,
    })
    .with_window(60)
    .with_commit_every(1)
    .with_workers(2);
    let clean_dir = scratch_dir("slots-clean");
    let clean = run_streaming(&exp, &clean_dir).unwrap();
    let dir = scratch_dir("slots-killed");
    let mut plan = CrashPlan::none()
        .kill_at(1, CrashSite::AfterCapture)
        .kill_at(2, CrashSite::TornCommit);
    let (result, kills, recovered) = run_until_complete(&exp, &dir, &mut plan);
    assert_eq!(kills, 2);
    assert_eq!(recovered, 1);
    assert_eq!(result, clean.result);
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streaming_final_state_matches_parallel_runner() {
    // The streaming engine re-uses the parallel runner's shard lanes:
    // with window == shard size, both fold the exact same capture
    // streams, so the final merged accumulator state — peaks and
    // recovered byte — must agree bit for bit.
    let base = CpaExperiment {
        circuit: BenignCircuit::DualC6288,
        source: SensorSource::TdcAll,
        traces: 300,
        checkpoints: 3,
        pilot_traces: 20,
        seed: 44,
    };
    let dir = scratch_dir("vs-parallel");
    let streamed = run_streaming(
        &StreamingCpa::new(base).with_window(75).with_workers(2),
        &dir,
    )
    .unwrap();
    let parallel = slm_core::experiments::run_cpa_parallel(&slm_core::experiments::ParallelCpa {
        base,
        shard_traces: 75,
        workers: 2,
    })
    .unwrap();
    assert_eq!(streamed.result.final_peaks, parallel.final_peaks);
    assert_eq!(
        streamed.result.recovered_key_byte,
        parallel.recovered_key_byte
    );
    assert_eq!(streamed.result.correct_key_byte, parallel.correct_key_byte);
    let _ = std::fs::remove_dir_all(&dir);
}
