//! Reduced-scale versions of every figure experiment, asserting the
//! qualitative bands the paper reports. The full-scale runs live in
//! `slm-bench` and the examples; these keep the shapes under test.

use slm_core::experiments::{
    activity_study, architecture_study, atpg_stimulus_study, fence_study, floorplan_views,
    full_key_recovery, ro_response, run_cpa, stealth_audit, timing_audit, tvla_study,
    CpaExperiment, SensorSource,
};
use slm_fabric::{BenignCircuit, FenceConfig};

#[test]
fn fig05_fig06_alu_tracks_ro_bursts() {
    let r = ro_response(BenignCircuit::Alu192, 400, 21).unwrap();
    // quiet lead-in, then fluctuation (Fig. 5 shape)
    let quiet: u32 = r.toggle_counts[..35].iter().sum();
    let active: u32 = r.toggle_counts[45..].iter().sum();
    assert!(
        active > 3 * quiet.max(1),
        "active {active} vs quiet {quiet}"
    );
    // Fig. 6: HW of sensitive bits anti-tracks delay (tracks TDC): when
    // the TDC dips, the ALU HW must move too. Use droop vs quiet means.
    let tdc_min_at = (0..r.tdc.len()).min_by_key(|&i| r.tdc[i]).unwrap();
    let hw_quiet = f64::from(r.hw_sensitive[..30].iter().sum::<u32>()) / 30.0;
    let hw_droop = f64::from(r.hw_sensitive[tdc_min_at]);
    assert!(
        (hw_droop - hw_quiet).abs() >= 1.0,
        "ALU HW must move at the droop: quiet {hw_quiet}, droop {hw_droop}"
    );
}

#[test]
fn fig07_fig08_alu_census_bands() {
    let study = activity_study(BenignCircuit::Alu192, 2_500, 22).unwrap();
    let c = &study.census;
    assert_eq!(c.total, 193);
    // Paper: 79/192 RO-sensitive, 40 AES-affected (39 ⊂ RO), 112 idle.
    // Bands, not point values (see EXPERIMENTS.md):
    assert!(
        c.ro_sensitive.len() >= 10 && c.ro_sensitive.len() <= 120,
        "RO-sensitive = {}",
        c.ro_sensitive.len()
    );
    assert!(!c.aes_sensitive.is_empty(), "AES must affect some bits");
    assert!(c.aes_sensitive.len() < c.ro_sensitive.len());
    // subset property: few AES-only bits
    assert!(c.aes_only.len() * 5 <= c.aes_sensitive.len().max(1) * 2);
    assert!(c.unaffected > c.total / 3);
    // Fig. 8: a best bit exists and its variance dominates
    assert!(study.variance.best_aes_endpoint.is_some());
}

#[test]
fn fig14_fig15_fig16_c6288_census_bands() {
    let study = activity_study(BenignCircuit::DualC6288, 2_500, 23).unwrap();
    let c = &study.census;
    assert_eq!(c.total, 64);
    // Paper: 49/64 RO-sensitive, 32 AES-affected, 15 idle. The C6288
    // must show a *larger sensitive fraction* than the ALU — the paper's
    // "50% of endpoints usable vs ~20% for the ALU".
    let alu = activity_study(BenignCircuit::Alu192, 2_500, 23).unwrap();
    let c6288_frac = c.ro_sensitive.len() as f64 / c.total as f64;
    let alu_frac = alu.census.ro_sensitive.len() as f64 / alu.census.total as f64;
    assert!(
        c6288_frac > alu_frac,
        "C6288 fraction {c6288_frac:.2} should beat ALU {alu_frac:.2}"
    );
    assert!(!c.aes_sensitive.is_empty());
}

#[test]
fn fig09_fig11_tdc_attacks_fast() {
    for (source, label) in [
        (SensorSource::TdcAll, "fig09"),
        (SensorSource::TdcSingleBit(None), "fig11"),
    ] {
        let r = run_cpa(&CpaExperiment {
            circuit: BenignCircuit::Alu192,
            source,
            traces: 6_000,
            checkpoints: 10,
            pilot_traces: 60,
            seed: 24,
        })
        .unwrap();
        assert_eq!(
            r.recovered_key_byte,
            Some(r.correct_key_byte),
            "{label} must recover the key"
        );
        assert!(r.mtd.unwrap() <= 6_000, "{label} mtd {:?}", r.mtd);
    }
}

#[test]
#[ignore = "minutes-long: run with --ignored or via the bench harness"]
fn fig10_fig12_benign_alu_attacks_slow_but_succeed() {
    for source in [
        SensorSource::BenignHammingWeight,
        SensorSource::BenignSingleBit(None),
    ] {
        let r = run_cpa(&CpaExperiment {
            circuit: BenignCircuit::Alu192,
            source,
            traces: 300_000,
            checkpoints: 30,
            pilot_traces: 500,
            seed: 25,
        })
        .unwrap();
        assert_eq!(r.recovered_key_byte, Some(r.correct_key_byte));
        // orders of magnitude slower than the TDC
        assert!(r.mtd.unwrap() > 5_000);
    }
}

#[test]
#[ignore = "minutes-long: run with --ignored or via the bench harness"]
fn fig17_fig18_benign_c6288_attacks_succeed() {
    // Our C6288 sensor is weaker than the paper's (its endpoint
    // responses spread over several capture points — see
    // EXPERIMENTS.md), so these budgets are larger than the paper's
    // 200k/100k; the attacks still succeed.
    for (source, traces) in [
        (SensorSource::BenignHammingWeight, 800_000),
        (SensorSource::BenignSingleBit(None), 500_000),
    ] {
        let r = run_cpa(&CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source,
            traces,
            checkpoints: 30,
            pilot_traces: 500,
            seed: 26,
        })
        .unwrap();
        assert_eq!(r.recovered_key_byte, Some(r.correct_key_byte));
    }
}

#[test]
fn fig03_fig04_floorplans() {
    for circuit in [BenignCircuit::Alu192, BenignCircuit::DualC6288] {
        let v = floorplan_views(circuit, 40, 27).unwrap();
        assert!(v.tdc_density > 2.0 * v.benign_density);
        assert!(v.ascii.contains('S') && v.ascii.contains('A') && v.ascii.contains('r'));
    }
}

#[test]
fn section6_stealth_and_timing() {
    assert!(stealth_audit().unwrap().stealth_demonstrated());
    let t = timing_audit(5.2).unwrap();
    assert!(t
        .rows
        .iter()
        .all(|r| r.meets_synth_clock && !r.meets_overclock && r.strict_check_fires));
}

#[test]
fn section6_atpg_extension() {
    let s = atpg_stimulus_study(12, 30, 28).unwrap();
    assert!(s.ratio >= 0.7, "ratio {}", s.ratio);
}

#[test]
fn extension_full_key_recovery_via_tdc() {
    let r = full_key_recovery(BenignCircuit::Alu192, SensorSource::TdcAll, 25_000, 60, 29).unwrap();
    assert!(r.correct_bytes >= 14, "{:?}", r.ranks);
    if r.correct_bytes == 16 {
        assert!(r.master_key_correct);
    }
}

#[test]
fn extension_tvla_flags_both_sensors() {
    let r = tvla_study(BenignCircuit::Alu192, 5_000, 60, 30).unwrap();
    assert!(r.tdc_leaks, "TDC |t| = {}", r.tdc_max_t);
    assert!(r.benign_max_t > 3.0, "benign |t| = {}", r.benign_max_t);
}

#[test]
fn extension_fence_countermeasure_works() {
    let base = CpaExperiment {
        circuit: BenignCircuit::DualC6288,
        source: SensorSource::TdcAll,
        traces: 4_000,
        checkpoints: 8,
        pilot_traces: 60,
        seed: 31,
    };
    let study = fence_study(&base, FenceConfig::strong()).unwrap();
    assert!(study.without_fence.mtd.is_some());
    assert!(study.fence_effective());
}

#[test]
fn extension_rds_outperforms_tdc() {
    // Swap the fabric's reference sensor for routing-delay-sensor
    // parameters (finer taps, lower jitter): the same attack needs fewer
    // traces — the related-work result the RDS model encodes.
    use slm_core::experiments::run_cpa_with;
    let base = CpaExperiment {
        circuit: BenignCircuit::DualC6288,
        source: SensorSource::TdcAll,
        traces: 3_000,
        checkpoints: 10,
        pilot_traces: 60,
        seed: 33,
    };
    let tdc = run_cpa(&base).unwrap();
    let rds = run_cpa_with(&base, |config| {
        config.tdc = *slm_sensors::RdsSensor::paper_150mhz(0x7d5).config();
    })
    .unwrap();
    assert!(tdc.mtd.is_some() && rds.mtd.is_some());
    assert!(
        rds.mtd.unwrap() <= tdc.mtd.unwrap(),
        "RDS {:?} should beat TDC {:?}",
        rds.mtd,
        tdc.mtd
    );
}

#[test]
fn extension_architecture_study_shapes() {
    let s = architecture_study(32).unwrap();
    let rca = s.row("rca64").unwrap();
    let csel = s.row("csel64").unwrap();
    assert!(rca.usable_periods > csel.usable_periods);
    assert!(csel.best_count >= rca.best_count);
}
