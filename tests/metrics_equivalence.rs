//! Serial-vs-parallel metrics equivalence.
//!
//! The observability layer inherits the capture pool's merge
//! discipline: every shard records into a forked sibling recorder and
//! the frames fold back in shard index order. The property under test:
//! for the same campaign plan, the merged frame at 1, 2 and 4 workers
//! is identical in everything but wall-clock span durations — same
//! counters, same gauges, same histograms, same span counts.

use proptest::prelude::*;
use slm_core::experiments::{
    run_cpa_parallel_recorded, run_fault_campaign_recorded, CpaExperiment, FaultCampaign,
    ParallelCpa, SensorSource,
};
use slm_cpa::DfaModel;
use slm_fabric::{AggressorSpec, BenignCircuit, FabricConfig};
use slm_obs::{MetricsFrame, Obs};

fn run(seed: u64, traces: u64, shard_traces: u64, workers: usize) -> MetricsFrame {
    let exp = ParallelCpa {
        base: CpaExperiment {
            circuit: BenignCircuit::Alu192,
            source: SensorSource::TdcAll,
            traces,
            checkpoints: 2,
            pilot_traces: 10,
            seed,
        },
        shard_traces,
        workers,
    };
    let obs = Obs::memory();
    run_cpa_parallel_recorded(&exp, &obs).expect("fabric builds");
    obs.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn merged_metrics_are_identical_at_1_2_4_workers(
        seed in 0u64..1_000,
        traces in 40u64..90,
        shard_traces in 10u64..30,
    ) {
        let serial = run(seed, traces, shard_traces, 1);
        let two = run(seed, traces, shard_traces, 2);
        let four = run(seed, traces, shard_traces, 4);
        // Strip only wall-clock span durations; counters, gauges,
        // histograms and span *counts* must be bit-identical.
        let serial = serial.deterministic();
        prop_assert_eq!(&serial, &two.deterministic());
        prop_assert_eq!(&serial, &four.deterministic());
        // and the counters actually cover the campaign:
        prop_assert_eq!(serial.counter("cpa.traces_absorbed"), traces);
    }

    /// The fault-injection campaign inherits the same discipline: its
    /// shard frames (capture and DFA pair counters) fold back in shard
    /// order, so the merged frame is worker-count invariant too.
    #[test]
    fn fault_campaign_metrics_are_identical_at_1_2_4_workers(
        seed in 0u64..1_000,
        captures in 120u64..240,
        shard_captures in 30u64..70,
    ) {
        let run = |workers: usize| {
            let exp = FaultCampaign {
                config: FabricConfig {
                    benign: BenignCircuit::DualC6288,
                    seed,
                    aggressor: Some(AggressorSpec::stealthy(3.0)),
                    ..FabricConfig::default()
                },
                model: DfaModel::SingleByte { max_fault_bits: 2 },
                captures,
                shard_captures,
                workers,
            };
            let obs = Obs::memory();
            run_fault_campaign_recorded(&exp, &obs).expect("fabric builds");
            obs.snapshot()
        };
        let serial = run(1).deterministic();
        prop_assert_eq!(&serial, &run(2).deterministic());
        prop_assert_eq!(&serial, &run(4).deterministic());
        prop_assert_eq!(serial.counter("fault.captures"), captures);
        prop_assert!(serial.counter("fault.pairs_accepted") > 0);
    }
}
