//! Serial-vs-parallel metrics equivalence.
//!
//! The observability layer inherits the capture pool's merge
//! discipline: every shard records into a forked sibling recorder and
//! the frames fold back in shard index order. The property under test:
//! for the same campaign plan, the merged frame at 1, 2 and 4 workers
//! is identical in everything but wall-clock span durations — same
//! counters, same gauges, same histograms, same span counts.

use proptest::prelude::*;
use slm_core::experiments::{run_cpa_parallel_recorded, CpaExperiment, ParallelCpa, SensorSource};
use slm_fabric::BenignCircuit;
use slm_obs::{MetricsFrame, Obs};

fn run(seed: u64, traces: u64, shard_traces: u64, workers: usize) -> MetricsFrame {
    let exp = ParallelCpa {
        base: CpaExperiment {
            circuit: BenignCircuit::Alu192,
            source: SensorSource::TdcAll,
            traces,
            checkpoints: 2,
            pilot_traces: 10,
            seed,
        },
        shard_traces,
        workers,
    };
    let obs = Obs::memory();
    run_cpa_parallel_recorded(&exp, &obs).expect("fabric builds");
    obs.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn merged_metrics_are_identical_at_1_2_4_workers(
        seed in 0u64..1_000,
        traces in 40u64..90,
        shard_traces in 10u64..30,
    ) {
        let serial = run(seed, traces, shard_traces, 1);
        let two = run(seed, traces, shard_traces, 2);
        let four = run(seed, traces, shard_traces, 4);
        // Strip only wall-clock span durations; counters, gauges,
        // histograms and span *counts* must be bit-identical.
        let serial = serial.deterministic();
        prop_assert_eq!(&serial, &two.deterministic());
        prop_assert_eq!(&serial, &four.deterministic());
        // and the counters actually cover the campaign:
        prop_assert_eq!(serial.counter("cpa.traces_absorbed"), traces);
    }
}
