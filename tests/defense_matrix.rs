//! Determinism properties of the defense subsystem.
//!
//! Two properties ride the same discipline the capture pool
//! established: (1) a defended fabric is a pure function of its
//! configuration — same seed, same traces, bit for bit, whatever mix of
//! countermeasures is deployed; (2) the attack-vs-defense matrix fans
//! its cells out over a worker pool and must come back bit-identical at
//! any worker count, metrics included.

use proptest::prelude::*;
use slm_core::experiments::{
    defense_matrix_recorded, CpaExperiment, DefenseArm, DefenseMatrix, DefenseMatrixExperiment,
    SensorSource,
};
use slm_fabric::{
    BenignCircuit, ClockJitterConfig, DefenseConfig, DetectorConfig, FabricConfig, FenceSpec,
    LdoConfig, MultiTenantFabric,
};
use slm_obs::{MetricsFrame, Obs};

fn defended_config(seed: u64, fence_peak: f64, jitter: u32, ldo: bool) -> FabricConfig {
    let mut defense = DefenseConfig {
        detector: DetectorConfig {
            window_ticks: 300,
            alarm_threshold: 0.05,
        },
        ..DefenseConfig::default()
    };
    defense.seed = seed ^ 0xd3f3;
    if fence_peak > 0.0 {
        defense.fence = Some(FenceSpec::prng(fence_peak));
    }
    if jitter > 0 {
        defense.clock_jitter = Some(ClockJitterConfig { max_cycles: jitter });
    }
    if ldo {
        defense.ldo = Some(LdoConfig { residual: 0.3 });
    }
    FabricConfig {
        benign: BenignCircuit::DualC6288,
        seed,
        stimulus_alternation: 0.25,
        defense: Some(defense),
        ..FabricConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn defended_captures_are_deterministic(
        seed in 0u64..10_000,
        fence_peak in 0.0f64..1.5,
        jitter in 0u32..6,
        ldo in any::<bool>(),
    ) {
        let config = defended_config(seed, fence_peak, jitter, ldo);
        let mut f1 = MultiTenantFabric::new(&config).expect("fabric builds");
        let mut f2 = MultiTenantFabric::new(&config).expect("fabric builds");
        for _ in 0..3 {
            let pt = f1.random_plaintext();
            prop_assert_eq!(pt, f2.random_plaintext());
            prop_assert_eq!(f1.encrypt_and_capture(pt), f2.encrypt_and_capture(pt));
        }
        prop_assert_eq!(f1.defense_telemetry(), f2.defense_telemetry());
        prop_assert!(f1.defense_telemetry().expect("defense deployed").ticks > 0);
    }
}

fn quick_matrix(seed: u64, workers: usize) -> (DefenseMatrix, MetricsFrame) {
    let exp = DefenseMatrixExperiment {
        base: CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces: 150,
            checkpoints: 2,
            pilot_traces: 10,
            seed,
        },
        arms: vec![
            DefenseArm::Undefended,
            DefenseArm::ConstantFence(0.5),
            DefenseArm::PrngFence(0.3),
            DefenseArm::AdaptiveFence(0.8),
            DefenseArm::Ldo(0.4),
            DefenseArm::ClockJitter(4),
        ],
        stimulus_alternation: 0.3,
        detector: DetectorConfig {
            window_ticks: 1200,
            alarm_threshold: 0.05,
        },
        detector_samples: 1500,
        workers,
    };
    let obs = Obs::memory();
    let matrix = defense_matrix_recorded(&exp, &obs).expect("fabric builds");
    (matrix, obs.snapshot())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn matrix_is_worker_count_invariant(seed in 0u64..1_000) {
        let (serial, serial_frame) = quick_matrix(seed, 1);
        let (wide, wide_frame) = quick_matrix(seed, 3);
        let (machine, machine_frame) = quick_matrix(seed, 0);
        // Every cell's CpaResult (each f64 of every progress curve),
        // the detector readings, and all deterministic metrics must be
        // bit-identical at any worker count.
        prop_assert_eq!(&serial, &wide);
        prop_assert_eq!(&serial, &machine);
        let serial_frame = serial_frame.deterministic();
        prop_assert_eq!(&serial_frame, &wide_frame.deterministic());
        prop_assert_eq!(&serial_frame, &machine_frame.deterministic());
        prop_assert_eq!(serial_frame.counter("defense.cells"), 6);
        prop_assert_eq!(serial_frame.spans["defense.cell"].count, 6);
    }
}
