//! End-to-end resilience: the remote CPA campaign on a faulty wire.
//!
//! The acceptance bar for the fault-tolerant transport: at a byte-fault
//! rate of 1e-4 the full remote attack completes without a panic,
//! quarantines or retries every corrupted exchange, recovers the
//! correct key byte with at most 2× the fault-free trace count, and a
//! checkpoint/resume mid-campaign reproduces the uninterrupted
//! correlation ranking exactly.

use slm_aes::soft;
use slm_cpa::store::{read_checkpoint, write_checkpoint};
use slm_cpa::{CpaAttack, LastRoundModel};
use slm_fabric::{
    BenignCircuit, CampaignDriver, FabricConfig, FabricError, RemoteSession, TransportError,
    WireFaultPlan,
};
use slm_pdn::noise::Rng64;

const SEED: u64 = 2024;

fn fabric_config() -> FabricConfig {
    FabricConfig {
        benign: BenignCircuit::DualC6288,
        seed: SEED,
        ..FabricConfig::default()
    }
}

/// Runs a TDC campaign over the given session, absorbing every
/// validated trace into a fresh CPA attack. Returns the attack, the
/// number of abandoned requests, and the driver for its stats.
fn run_campaign(session: RemoteSession, traces: u64) -> (CpaAttack, u64, CampaignDriver) {
    let model = LastRoundModel::paper_target();
    let points = session.fabric().last_round_window().len();
    let mut driver = CampaignDriver::new(session);
    let mut attack = CpaAttack::new(model, points);
    let mut rng = Rng64::new(SEED ^ 0xc0ffee);
    let mut abandoned = 0u64;
    let mut buf = vec![0.0f64; points];
    for _ in 0..traces {
        let mut pt = [0u8; 16];
        rng.fill_bytes(&mut pt);
        match driver.capture(pt) {
            Ok(rec) => {
                for (dst, &d) in buf.iter_mut().zip(&rec.tdc) {
                    *dst = f64::from(d);
                }
                // A validated frame always carries a full window; a
                // short one would be a framing bug, and `try_add_trace`
                // turns it into a quarantine instead of an abort.
                let samples = &buf[..rec.tdc.len().min(buf.len())];
                attack
                    .try_add_trace(&rec.ciphertext, samples)
                    .expect("validated frames carry full windows");
            }
            Err(FabricError::Transport(TransportError::RetriesExhausted { .. })) => {
                abandoned += 1;
            }
            Err(other) => panic!("campaign hit a non-retryable error: {other}"),
        }
    }
    (attack, abandoned, driver)
}

#[test]
fn faulty_campaign_recovers_key_within_2x_traces() {
    let cfg = fabric_config();
    let correct = soft::key_expansion(&cfg.aes_key)[10][3];

    // Fault-free baseline: how many traces until the key byte leads.
    let clean_session = RemoteSession::new(&cfg, vec![]).unwrap();
    let baseline_traces = 2_000u64;
    let (clean_attack, clean_abandoned, clean_driver) =
        run_campaign(clean_session, baseline_traces);
    assert_eq!(clean_abandoned, 0);
    assert_eq!(clean_driver.stats().retries, 0);
    assert_eq!(clean_attack.rank_of(correct), 0, "baseline must converge");

    // Same campaign at 1e-4 byte faults, budgeted at 2× the baseline:
    // the resilient driver must deliver a converged attack well inside
    // that budget.
    let plan = WireFaultPlan::byte_noise(SEED, 1e-4);
    let faulty_session = RemoteSession::with_fault_plan(&cfg, vec![], plan).unwrap();
    let (faulty_attack, abandoned, driver) = run_campaign(faulty_session, 2 * baseline_traces);
    assert_eq!(
        faulty_attack.rank_of(correct),
        0,
        "faulty-wire attack must still converge within 2x traces"
    );
    let stats = driver.stats();
    assert!(
        stats.delivered + abandoned == 2 * baseline_traces,
        "every request must resolve to a validated trace or a typed error"
    );
    // At 1e-4/byte on ~100-byte exchanges faults are certain over 4k
    // traces; the driver must have actually exercised the retry path.
    assert!(stats.retries > 0, "no retries at 1e-4/byte is implausible");
    assert!(
        driver.session().link_stats().resyncs > 0,
        "scanner never resynced at 1e-4/byte"
    );
    // Quarantined records never reach the attack: delivered count is
    // exactly what the accumulator absorbed.
    assert_eq!(faulty_attack.traces(), stats.delivered);
    // Backoff was charged to the wire clock.
    if stats.retries > 0 {
        assert!(stats.backoff_s > 0.0);
        assert!(driver.session().wire_time_s() > stats.backoff_s);
    }
}

#[test]
fn checkpoint_resume_reproduces_uninterrupted_ranking() {
    // Capture once (faulty wire), then analyze the same record stream
    // twice: straight through, and with a serialize/reload/resume cycle
    // halfway. The final correlation ranking must be identical.
    let cfg = fabric_config();
    let plan = WireFaultPlan::byte_noise(SEED ^ 1, 1e-4);
    let session = RemoteSession::with_fault_plan(&cfg, vec![], plan).unwrap();
    let model = LastRoundModel::paper_target();
    let points = session.fabric().last_round_window().len();
    let mut driver = CampaignDriver::new(session);
    let mut rng = Rng64::new(SEED ^ 2);
    let mut records = Vec::new();
    while records.len() < 1_000 {
        let mut pt = [0u8; 16];
        rng.fill_bytes(&mut pt);
        if let Ok(rec) = driver.capture(pt) {
            let pts: Vec<f64> = rec.tdc.iter().map(|&d| f64::from(d)).collect();
            records.push((rec.ciphertext, pts));
        }
    }

    let mut unbroken = CpaAttack::new(model, points);
    for (ct, pts) in &records {
        unbroken.add_trace(ct, pts);
    }

    let mut first = CpaAttack::new(model, points);
    for (ct, pts) in &records[..500] {
        first.add_trace(ct, pts);
    }
    let mut bytes = Vec::new();
    write_checkpoint(&mut bytes, &first.checkpoint()).unwrap();
    drop(first); // the crash
    let mut resumed = CpaAttack::resume(read_checkpoint(&bytes[..]).unwrap()).unwrap();
    for (ct, pts) in &records[500..] {
        resumed.add_trace(ct, pts);
    }

    assert_eq!(resumed.traces(), unbroken.traces());
    assert_eq!(resumed.correlations(), unbroken.correlations());
    let resumed_peaks = resumed.peak_correlations();
    let unbroken_peaks = unbroken.peak_correlations();
    assert_eq!(resumed_peaks, unbroken_peaks);
    assert_eq!(resumed.best_candidate(), unbroken.best_candidate());
    for k in 0..=255u8 {
        assert_eq!(resumed.rank_of(k), unbroken.rank_of(k));
    }
}
