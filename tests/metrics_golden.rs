//! Golden-file pin of the `--metrics` JSON export.
//!
//! A small fixed-seed campaign recorded under the *manual* clock (span
//! durations count recorder calls, not wall time) must serialize to
//! byte-identical JSON on every run and platform. The one remaining
//! float source — PDN telemetry gauges — is rounded to 1e-9 before
//! pinning, so a libm ulp difference across platforms cannot flake the
//! test while a real regression (different counters, different spans,
//! different droop) still fails it.
//!
//! Regenerate after an intentional format or instrumentation change:
//! `UPDATE_GOLDEN=1 cargo test --test metrics_golden`.

use slm_fabric::{BenignCircuit, CampaignDriver, FabricConfig, RemoteSession};
use slm_obs::{MetricsFrame, MetricsReport, Obs};
use slm_pdn::noise::Rng64;

const SEED: u64 = 77;
const GOLDEN: &str = include_str!("golden/metrics_report.json");

fn rounded(mut frame: MetricsFrame) -> MetricsFrame {
    let round = |v: f64| (v * 1e9).round() / 1e9;
    for g in frame.gauges.values_mut() {
        g.last = round(g.last);
        g.min = round(g.min);
        g.max = round(g.max);
    }
    for h in frame.histograms.values_mut() {
        h.sum = round(h.sum);
        h.min = round(h.min);
        h.max = round(h.max);
    }
    frame
}

fn campaign_frame() -> MetricsFrame {
    campaign_frame_with(None)
}

fn campaign_frame_with(aggressor: Option<slm_fabric::AggressorSpec>) -> MetricsFrame {
    let config = FabricConfig {
        benign: BenignCircuit::Alu192,
        seed: SEED,
        aggressor,
        ..FabricConfig::default()
    };
    let session = RemoteSession::new(&config, vec![]).expect("fabric builds");
    let obs = Obs::manual();
    let mut driver = CampaignDriver::new(session).with_obs(obs.clone());
    let mut rng = Rng64::new(SEED);
    for _ in 0..6 {
        let mut pt = [0u8; 16];
        rng.fill_bytes(&mut pt);
        driver.capture(pt).expect("clean wire never fails");
    }
    obs.snapshot()
}

#[test]
fn metrics_report_json_matches_golden_file() {
    let report = MetricsReport::new("golden_campaign", rounded(campaign_frame()));
    let json = report.to_json();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/golden/metrics_report.json"
        );
        std::fs::write(path, &json).expect("golden file is writable");
        return;
    }
    assert_eq!(
        json, GOLDEN,
        "metrics JSON drifted from the golden file; if intentional, \
         regenerate with UPDATE_GOLDEN=1 cargo test --test metrics_golden"
    );
}

#[test]
fn disabled_aggressor_matches_the_same_golden_file() {
    // A mounted-but-zero-amp aggressor must be electrically and
    // observably absent: the same golden JSON, byte for byte. This
    // pins the fault-injection path's disabled-is-bit-exact contract
    // at the metrics-export level, not just per-capture.
    let zeroed = slm_fabric::AggressorSpec::stealthy(0.0);
    let report = MetricsReport::new(
        "golden_campaign",
        rounded(campaign_frame_with(Some(zeroed))),
    );
    assert_eq!(
        report.to_json(),
        GOLDEN,
        "a 0 A aggressor perturbed the golden campaign"
    );
}

#[test]
fn golden_frame_is_reproducible_within_a_run() {
    // The manual clock makes even span durations deterministic: two
    // identical campaigns must produce byte-identical reports without
    // any rounding at all.
    let a = MetricsReport::new("g", campaign_frame()).to_json();
    let b = MetricsReport::new("g", campaign_frame()).to_json();
    assert_eq!(a, b);
}
